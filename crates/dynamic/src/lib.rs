//! Online insert/delete over hopspan navigators: a [`DynamicNavigator`]
//! wraps the flat, build-once [`MetricNavigator`] in a double-buffered
//! epoch pair so queries keep answering — against the published epoch's
//! dense, zero-allocation layout — while a background builder thread
//! applies a mutation log and swaps freshly built epochs in atomically.
//!
//! The design follows the paper's hierarchy-of-nets localization
//! (§3–§5): a single mutation perturbs only the O(log Φ) net levels
//! around the touched point, so most cover trees of the next epoch
//! recur **shape-identically** and their Theorem 1.1 spanners are
//! reused from a fingerprint cache instead of being rebuilt
//! ([`MetricNavigator::from_cover_reusing_with_stats`]). Amortization à
//! la the `DecrementalSpanner` blueprint: mutations bump per-tree dirty
//! counters (keyed on the Ramsey home tree of the touched point), and a
//! rebuild starts only when a counter crosses
//! [`DynConfig::dirty_threshold`] or the global pending log crosses
//! [`DynConfig::max_pending`].
//!
//! Determinism contract: every epoch's navigator is **bit-identical**
//! to a from-scratch [`MetricNavigator::general_budgeted`] build over
//! the same live point set with the same seed, for any worker count —
//! the per-epoch FNV-1a `H_X` hash ([`EpochInfo::hx`]) is the pinned
//! witness. Removed ids answer a typed
//! [`NavigationError::PointRetired`] immediately (tombstones), and ids
//! inserted after the last build cut answer
//! [`NavigationError::PointOutOfRange`] until the next swap publishes
//! them.
//!
//! All writes to the epoch/tombstone/dirty state are funneled through
//! [`mod@epoch`]; lint rule R14 `epoch-unguarded-mutation` rejects any
//! other write site in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

use hopspan_core::{MetricNavigator, NavigationError};

mod builder;
pub mod epoch;

use builder::wait_resilient;
use epoch::{Ledger, Shared, Status, NO_DENSE};

/// Default build seed: fixed across epochs so a from-scratch build over
/// the same live point set reproduces every epoch bit-exactly.
pub const DEFAULT_SEED: u64 = 0x5EED_0E27;

/// Configuration of a [`DynamicNavigator`].
#[derive(Debug, Clone, Copy)]
pub struct DynConfig {
    /// Ramsey tree budget of every epoch build (Table 1 trade-off).
    pub tree_budget: usize,
    /// Hop bound `k` of the per-tree spanners.
    pub k: usize,
    /// Build rng seed; identical for every epoch (see [`DEFAULT_SEED`]).
    pub seed: u64,
    /// Per-tree dirty count that triggers an amortized rebuild.
    pub dirty_threshold: u32,
    /// Pending-mutation count that triggers a rebuild regardless of
    /// per-tree locality, bounding worst-case staleness.
    pub max_pending: u64,
    /// Worker threads for epoch builds (`None` = automatic).
    pub workers: Option<usize>,
}

impl Default for DynConfig {
    fn default() -> Self {
        DynConfig {
            tree_budget: 6,
            k: 2,
            seed: DEFAULT_SEED,
            dirty_threshold: 8,
            max_pending: 64,
            workers: None,
        }
    }
}

/// Error type of the mutation API.
#[derive(Debug)]
#[non_exhaustive]
pub enum DynError {
    /// An epoch build failed (cover/spanner construction error).
    Build(NavigationError),
    /// The inserted point has the wrong dimension.
    DimensionMismatch {
        /// Dimension of the space.
        expected: usize,
        /// Dimension of the rejected point.
        got: usize,
    },
    /// The inserted point has a NaN or infinite coordinate.
    NonFiniteCoordinate,
    /// The inserted point sits at distance exactly zero from a live
    /// point (the cover constructions reject duplicates).
    DuplicatePoint {
        /// The colliding live id.
        of: u32,
    },
    /// The id was never allocated.
    UnknownId {
        /// The offending id.
        id: u32,
    },
    /// The id was already removed (tombstoned).
    AlreadyRetired {
        /// The offending id.
        id: u32,
    },
    /// Removing the point would leave fewer than two live points.
    TooFewPoints {
        /// Current live count.
        live: usize,
    },
}

impl fmt::Display for DynError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynError::Build(e) => write!(f, "epoch build failed: {e}"),
            DynError::DimensionMismatch { expected, got } => {
                write!(f, "point dimension {got} != space dimension {expected}")
            }
            DynError::NonFiniteCoordinate => write!(f, "point has a non-finite coordinate"),
            DynError::DuplicatePoint { of } => {
                write!(f, "point duplicates live point {of}")
            }
            DynError::UnknownId { id } => write!(f, "id {id} was never allocated"),
            DynError::AlreadyRetired { id } => write!(f, "id {id} is already retired"),
            DynError::TooFewPoints { live } => {
                write!(f, "cannot remove below two live points (live = {live})")
            }
        }
    }
}

impl std::error::Error for DynError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DynError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NavigationError> for DynError {
    fn from(e: NavigationError) -> Self {
        DynError::Build(e)
    }
}

/// A point-in-time description of the published epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochInfo {
    /// Monotonically increasing epoch id (initial build = 1).
    pub id: u64,
    /// FNV-1a `H_X` hash of the epoch's navigator — equal to the hash
    /// of a from-scratch build over the same live point set.
    pub hx: u64,
    /// Live points the epoch navigates (its dense point count).
    pub published_points: usize,
    /// Cover trees of the epoch.
    pub tree_count: usize,
    /// Trees whose spanner was reused from the previous epoch's cache.
    pub reused_trees: usize,
    /// Realized Ramsey padding parameter γ of the build.
    pub gamma: f64,
    /// Mutations accepted but not yet reflected in this epoch.
    pub pending: u64,
}

/// Monotonic counters of a [`DynamicNavigator`] (all lock-free reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynCounters {
    /// Accepted inserts.
    pub inserts: u64,
    /// Accepted removes.
    pub removes: u64,
    /// Successfully published rebuilds (excludes the initial build).
    pub rebuilds: u64,
    /// Contained rebuild failures (the previous epoch stayed up).
    pub failed_rebuilds: u64,
}

/// Shared state between the handle, the builder thread and queries.
pub(crate) struct Inner {
    pub(crate) cfg: DynConfig,
    pub(crate) dim: usize,
    pub(crate) shared: RwLock<Shared>,
    pub(crate) ledger: Mutex<Ledger>,
    pub(crate) cv: Condvar,
    pub(crate) epoch_id: AtomicU64,
    pub(crate) rebuilds: AtomicU64,
    pub(crate) inserts: AtomicU64,
    pub(crate) removes: AtomicU64,
}

/// An epoch-swapped dynamic navigator: lock-striped queries against the
/// published epoch, mutations through a tombstone set and mutation log,
/// amortized background rebuilds swapped in atomically.
pub struct DynamicNavigator {
    inner: Arc<Inner>,
    builder: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for DynamicNavigator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynamicNavigator")
            .field("epoch_id", &self.epoch_id())
            .field("dim", &self.inner.dim)
            .finish_non_exhaustive()
    }
}

impl DynamicNavigator {
    /// Builds epoch 1 over the seed point set (synchronously, on the
    /// calling thread) and starts the builder thread.
    ///
    /// # Errors
    ///
    /// Rejects fewer than two points, inconsistent dimensions,
    /// non-finite coordinates and duplicate points; propagates epoch
    /// build failures.
    pub fn new(points: &[Vec<f64>], cfg: DynConfig) -> Result<Self, DynError> {
        if points.len() < 2 {
            return Err(DynError::TooFewPoints { live: points.len() });
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(DynError::NonFiniteCoordinate);
        }
        for p in points {
            if p.len() != dim {
                return Err(DynError::DimensionMismatch {
                    expected: dim,
                    got: p.len(),
                });
            }
            if p.iter().any(|c| !c.is_finite()) {
                return Err(DynError::NonFiniteCoordinate);
            }
        }
        let cut = epoch::BuildCut {
            points: points
                .iter()
                .enumerate()
                .map(|(i, p)| epoch::CutPoint {
                    ext: i as u32,
                    coords: p.clone(),
                })
                .collect(),
            seq: 0,
        };
        let first = builder::build_epoch(&cut, &cfg, &std::collections::BTreeMap::new())?;
        let tree_count = first.nav.tree_count();
        let inner = Arc::new(Inner {
            cfg,
            dim,
            shared: RwLock::new(Shared::initial(first)),
            ledger: Mutex::new(Ledger::initial(points.to_vec(), tree_count)),
            cv: Condvar::new(),
            epoch_id: AtomicU64::new(1),
            rebuilds: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            removes: AtomicU64::new(0),
        });
        let worker = Arc::clone(&inner);
        let handle = std::thread::spawn(move || builder::run(worker));
        Ok(DynamicNavigator {
            inner,
            builder: Some(handle),
        })
    }

    /// Inserts a point, returning its external id and the epoch id
    /// current at commit time (the point becomes navigable in a later
    /// epoch — a client seeing the same epoch id in query replies knows
    /// the insert is not visible yet).
    ///
    /// # Errors
    ///
    /// Rejects wrong-dimension, non-finite and duplicate points.
    pub fn insert(&self, coords: &[f64]) -> Result<(u32, u64), DynError> {
        if coords.len() != self.inner.dim {
            return Err(DynError::DimensionMismatch {
                expected: self.inner.dim,
                got: coords.len(),
            });
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(DynError::NonFiniteCoordinate);
        }
        let mut ledger = lock_resilient(&self.inner.ledger);
        if let Some(of) = ledger.find_duplicate(coords) {
            return Err(DynError::DuplicatePoint { of });
        }
        // Attribute the mutation to the first net level the new point
        // perturbs: the home tree of its nearest live published point.
        let mut view = write_resilient(&self.inner.shared);
        let perturbed = ledger.nearest_live(coords).and_then(|near| {
            let ep = &view.epoch;
            match ep.dense_of_ext.get(near as usize) {
                Some(&d) if d != NO_DENSE => ep.nav.home_tree(d as usize),
                _ => None,
            }
        });
        let ext = ledger.apply_insert(coords.to_vec(), perturbed);
        view.admit(ext);
        let at_epoch = view.epoch.id;
        let due = ledger.rebuild_due(self.inner.cfg.dirty_threshold, self.inner.cfg.max_pending);
        drop(view);
        drop(ledger);
        self.inner.inserts.fetch_add(1, Ordering::Relaxed);
        if due {
            self.inner.cv.notify_all();
        }
        Ok((ext, at_epoch))
    }

    /// Removes a point by id. The tombstone takes effect immediately —
    /// queries naming the id answer [`NavigationError::PointRetired`]
    /// from this call on — while the point leaves the navigator at the
    /// next epoch swap. Returns the epoch id current at commit time.
    ///
    /// # Errors
    ///
    /// Rejects unknown ids, double removes, and removing below two
    /// live points.
    pub fn remove(&self, id: u32) -> Result<u64, DynError> {
        let mut ledger = lock_resilient(&self.inner.ledger);
        if !ledger.knows(id) {
            return Err(DynError::UnknownId { id });
        }
        if ledger.coords_of(id).is_none() {
            return Err(DynError::AlreadyRetired { id });
        }
        if ledger.live() <= 2 {
            return Err(DynError::TooFewPoints {
                live: ledger.live(),
            });
        }
        let mut view = write_resilient(&self.inner.shared);
        let perturbed = {
            let ep = &view.epoch;
            match ep.dense_of_ext.get(id as usize) {
                Some(&d) if d != NO_DENSE => ep.nav.home_tree(d as usize),
                _ => None,
            }
        };
        ledger.apply_remove(id, perturbed);
        view.retire(id);
        let at_epoch = view.epoch.id;
        let due = ledger.rebuild_due(self.inner.cfg.dirty_threshold, self.inner.cfg.max_pending);
        drop(view);
        drop(ledger);
        self.inner.removes.fetch_add(1, Ordering::Relaxed);
        if due {
            self.inner.cv.notify_all();
        }
        Ok(at_epoch)
    }

    /// The k-hop path between two external ids, written into `out` as
    /// external ids, answered from the published epoch. Returns the id
    /// of the epoch that answered (the staleness witness a client
    /// compares across replies). Zero allocations after warm-up: the
    /// dense query runs the navigator's `_into` path and the id
    /// translation rewrites `out` in place.
    ///
    /// # Errors
    ///
    /// [`NavigationError::PointRetired`] for tombstoned ids,
    /// [`NavigationError::PointOutOfRange`] for unknown ids and for
    /// inserts not yet published; navigator errors pass through.
    pub fn find_path_into(
        &self,
        u: u32,
        v: u32,
        out: &mut Vec<usize>,
    ) -> Result<u64, NavigationError> {
        let view = read_resilient(&self.inner.shared);
        let du = resolve(&view, u)?;
        let dv = resolve(&view, v)?;
        let ep = &view.epoch;
        ep.nav.find_path_into(du, dv, out)?;
        for p in out.iter_mut() {
            *p = ep.ext_of_dense[*p] as usize;
        }
        Ok(ep.id)
    }

    /// Allocating convenience wrapper around
    /// [`DynamicNavigator::find_path_into`].
    ///
    /// # Errors
    ///
    /// Same as [`DynamicNavigator::find_path_into`].
    pub fn find_path(&self, u: u32, v: u32) -> Result<(u64, Vec<usize>), NavigationError> {
        let mut out = Vec::new();
        let id = self.find_path_into(u, v, &mut out)?;
        Ok((id, out))
    }

    /// The published epoch id (single atomic load; metrics-safe).
    #[must_use]
    pub fn epoch_id(&self) -> u64 {
        self.inner.epoch_id.load(Ordering::Relaxed)
    }

    /// Live point count (accepted inserts minus removes).
    #[must_use]
    pub fn live_count(&self) -> usize {
        lock_resilient(&self.inner.ledger).live()
    }

    /// A snapshot of the published epoch's description.
    #[must_use]
    pub fn epoch_info(&self) -> EpochInfo {
        let ledger = lock_resilient(&self.inner.ledger);
        let view = read_resilient(&self.inner.shared);
        let ep = &view.epoch;
        EpochInfo {
            id: ep.id,
            hx: ep.hx,
            published_points: ep.ext_of_dense.len(),
            tree_count: ep.nav.tree_count(),
            reused_trees: ep.reused_trees,
            gamma: ep.gamma,
            pending: ledger.pending(),
        }
    }

    /// The published epoch's navigator (an `Arc` clone; the navigator
    /// is immutable, so holding it across swaps is safe — it just goes
    /// stale).
    #[must_use]
    pub fn published_navigator(&self) -> Arc<MetricNavigator> {
        Arc::clone(&read_resilient(&self.inner.shared).epoch.nav)
    }

    /// The external ids the published epoch navigates, in dense order —
    /// a from-scratch build over exactly these points (in this order)
    /// reproduces the epoch bit-identically.
    #[must_use]
    pub fn published_ids(&self) -> Vec<u32> {
        read_resilient(&self.inner.shared)
            .epoch
            .ext_of_dense
            .clone()
    }

    /// Coordinates of a live id (`None` for retired/unknown ids).
    #[must_use]
    pub fn coords_of(&self, id: u32) -> Option<Vec<f64>> {
        lock_resilient(&self.inner.ledger)
            .coords_of(id)
            .map(<[f64]>::to_vec)
    }

    /// Monotonic operation counters.
    #[must_use]
    pub fn counters(&self) -> DynCounters {
        let failed = lock_resilient(&self.inner.ledger).failed_rebuilds();
        DynCounters {
            inserts: self.inner.inserts.load(Ordering::Relaxed),
            removes: self.inner.removes.load(Ordering::Relaxed),
            rebuilds: self.inner.rebuilds.load(Ordering::Relaxed),
            failed_rebuilds: failed,
        }
    }

    /// Blocks until every accepted mutation is reflected in the
    /// published epoch (forcing rebuilds below the amortization
    /// thresholds if needed) and returns the drained epoch's info.
    pub fn flush(&self) -> EpochInfo {
        let mut ledger = lock_resilient(&self.inner.ledger);
        if !ledger.drained() {
            ledger.request_flush();
            self.inner.cv.notify_all();
            while !ledger.drained() {
                ledger = wait_resilient(&self.inner.cv, ledger);
            }
        }
        drop(ledger);
        self.epoch_info()
    }

    /// Chaos knob: the next `n` rebuild attempts panic mid-build; the
    /// panics are contained, the previous epoch stays published, and
    /// `failed_rebuilds` counts them. Used by the `Churn` chaos family.
    pub fn arm_rebuild_failures(&self, n: u32) {
        lock_resilient(&self.inner.ledger).arm_rebuild_failures(n);
    }

    /// Drains the wall times (nanoseconds) of rebuilds published since
    /// the last call — the E27 rebuild-tail-latency telemetry.
    #[must_use]
    pub fn drain_rebuild_nanos(&self) -> Vec<u64> {
        lock_resilient(&self.inner.ledger).drain_rebuild_nanos()
    }
}

impl Drop for DynamicNavigator {
    fn drop(&mut self) {
        lock_resilient(&self.inner.ledger).request_shutdown();
        self.inner.cv.notify_all();
        if let Some(handle) = self.builder.take() {
            // A panicked builder already contained its panic per
            // rebuild; a join error here means the thread died outside
            // `catch_unwind`, which only the OS can cause — nothing to
            // do but drop the error.
            let _joined = handle.join();
        }
    }
}

/// Maps an external id to the published epoch's dense index, applying
/// tombstone and publication semantics.
fn resolve(view: &Shared, ext: u32) -> Result<usize, NavigationError> {
    match view.status.get(ext as usize) {
        None => Err(NavigationError::PointOutOfRange {
            point: ext as usize,
        }),
        Some(Status::Retired) => Err(NavigationError::PointRetired {
            point: ext as usize,
        }),
        Some(Status::Live) => match view.epoch.dense_of_ext.get(ext as usize) {
            Some(&d) if d != NO_DENSE => Ok(d as usize),
            // Live but inserted after the last build cut: out of range
            // of the published epoch until the next swap.
            _ => Err(NavigationError::PointOutOfRange {
                point: ext as usize,
            }),
        },
    }
}

/// Acquires the ledger mutex, adopting poison (the ledger is kept
/// consistent by the epoch funnel's complete-write methods).
pub(crate) fn lock_resilient<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Acquires the shared state for reading, adopting poison.
pub(crate) fn read_resilient<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Acquires the shared state for writing, adopting poison.
pub(crate) fn write_resilient<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}
