//! The epoch lifecycle funnel: **every** write to navigator, tombstone,
//! mutation-log and dirty-counter state of the dynamic layer happens
//! through the methods of this module — [`Shared`] (the query-visible
//! view: published epoch plus per-id liveness) and [`Ledger`] (the
//! builder-visible view: coordinates, pending mutation count, per-tree
//! dirty counters). Lint rule R14 `epoch-unguarded-mutation` flags any
//! write to this state elsewhere in the crate, so the swap-safety
//! argument of DESIGN.md §12 only has to audit this file.
//!
//! Swap safety in one paragraph: queries hold the `Shared` read lock
//! for their whole body, so they observe either the old epoch or the
//! new one, never a half-swapped mix; [`Shared::install`] replaces the
//! epoch `Arc` under the write lock and leaves tombstones untouched, so
//! a retired id stays retired across the swap; and the epoch id is
//! assigned by `install` as `old + 1` under the same lock, so ids are
//! strictly monotonic and a client comparing epoch ids across replies
//! can order them.

use std::sync::Arc;

use hopspan_core::MetricNavigator;

/// Liveness of one external id, consulted before any epoch lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// The point exists; it may or may not be in the published epoch
    /// yet (a fresh insert becomes navigable at the next swap).
    Live,
    /// The point was removed. Tombstones are permanent: the id answers
    /// a typed `PointRetired` forever, it is never reused.
    Retired,
}

/// Sentinel for "external id has no dense index in this epoch".
pub(crate) const NO_DENSE: u32 = u32::MAX;

/// One immutable published epoch: a from-scratch-equivalent navigator
/// over the live point set at the build cut, plus the id translation
/// tables queries need. Never mutated after [`Shared::install`].
#[derive(Debug)]
pub struct Epoch {
    /// Monotonically increasing epoch id (the initial build is 1).
    pub(crate) id: u64,
    /// The navigator over the epoch's dense point set.
    pub(crate) nav: Arc<MetricNavigator>,
    /// FNV-1a `H_X` hash of `nav` — bit-identical to a from-scratch
    /// build over the same live point set (the equivalence witness).
    pub(crate) hx: u64,
    /// Realized Ramsey padding parameter of the build.
    pub(crate) gamma: f64,
    /// Cover trees whose spanner was reused from the previous epoch.
    pub(crate) reused_trees: usize,
    /// `dense_of_ext[ext]` = dense index in `nav`, or [`NO_DENSE`].
    pub(crate) dense_of_ext: Vec<u32>,
    /// Inverse map: external id of each dense index.
    pub(crate) ext_of_dense: Vec<u32>,
    /// The mutation sequence number this epoch reflects.
    pub(crate) seq: u64,
}

/// The query-visible state: the published epoch and the per-external-id
/// liveness table. Readers traverse it under the shared read lock;
/// every write goes through the `&mut self` methods below.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) epoch: Arc<Epoch>,
    pub(crate) status: Vec<Status>,
}

impl Shared {
    /// The initial state: epoch 1 over the seed point set, all ids live.
    pub(crate) fn initial(mut epoch: Epoch) -> Self {
        epoch.id = 1;
        let n = epoch.dense_of_ext.len();
        Shared {
            epoch: Arc::new(epoch),
            status: vec![Status::Live; n],
        }
    }

    /// Records a freshly allocated external id as live (commit half of
    /// an insert). The id becomes navigable at the next swap.
    pub(crate) fn admit(&mut self, ext: u32) {
        let at = ext as usize;
        if at >= self.status.len() {
            self.status.resize(at + 1, Status::Live);
        }
        self.status[at] = Status::Live;
    }

    /// Tombstones an external id (commit half of a remove). Takes
    /// effect immediately — queries answer `PointRetired` from this
    /// moment, even though the point leaves the navigator only at the
    /// next swap.
    pub(crate) fn retire(&mut self, ext: u32) {
        self.status[ext as usize] = Status::Retired;
    }

    /// Atomically publishes a freshly built epoch, assigning it the
    /// next epoch id. The liveness table is deliberately untouched:
    /// tombstones survive the swap, and ids inserted after the build
    /// cut stay live-but-unpublished until the next epoch.
    pub(crate) fn install(&mut self, mut epoch: Epoch) -> u64 {
        epoch.id = self.epoch.id + 1;
        let id = epoch.id;
        self.epoch = Arc::new(epoch);
        id
    }
}

/// One entry of the build cut: an external id with its coordinates.
#[derive(Debug, Clone)]
pub(crate) struct CutPoint {
    pub(crate) ext: u32,
    pub(crate) coords: Vec<f64>,
}

/// A consistent snapshot of the live point set handed to the builder:
/// the points in ascending external-id order plus the mutation
/// sequence number the resulting epoch will reflect.
#[derive(Debug)]
pub(crate) struct BuildCut {
    pub(crate) points: Vec<CutPoint>,
    pub(crate) seq: u64,
}

/// The mutation-side state, guarded by the ledger mutex: coordinates of
/// every ever-inserted point, the pending-mutation bookkeeping and the
/// per-tree dirty counters that drive rebuild scheduling. All writes
/// go through the `&mut self` methods below (the commit funnel).
#[derive(Debug)]
pub(crate) struct Ledger {
    /// Coordinates per external id; `None` once retired.
    coords: Vec<Option<Vec<f64>>>,
    /// Live point count (`coords` entries that are `Some`).
    live: usize,
    /// Mutation sequence number: bumped once per accepted mutation.
    seq: u64,
    /// The sequence number covered by the published epoch.
    applied_seq: u64,
    /// Per-tree dirty counters over the published epoch's cover trees.
    dirty: Vec<u32>,
    /// Chaos knob: the next `n` rebuild attempts panic mid-build.
    fail_rebuilds: u32,
    /// Set by `flush()`: rebuild as soon as anything is pending, even
    /// below the amortization thresholds. Cleared once drained.
    force: bool,
    /// Set once by `Drop`; wakes and terminates the builder thread.
    shutdown: bool,
    /// True while the builder is between cut and commit.
    building: bool,
    /// Wall times of completed rebuilds, drained by telemetry readers.
    rebuild_nanos: Vec<u64>,
    /// Rebuild attempts that failed (contained panics); the previous
    /// epoch stayed published.
    failed_rebuilds: u64,
}

impl Ledger {
    /// A ledger over the seed point set, with one dirty counter per
    /// cover tree of the initial epoch.
    pub(crate) fn initial(points: Vec<Vec<f64>>, tree_count: usize) -> Self {
        let live = points.len();
        Ledger {
            coords: points.into_iter().map(Some).collect(),
            live,
            seq: 0,
            applied_seq: 0,
            dirty: vec![0; tree_count],
            fail_rebuilds: 0,
            force: false,
            shutdown: false,
            building: false,
            rebuild_nanos: Vec::new(),
            failed_rebuilds: 0,
        }
    }

    /// Number of live points.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Whether this external id was ever allocated (live or retired).
    pub(crate) fn knows(&self, ext: u32) -> bool {
        (ext as usize) < self.coords.len()
    }

    /// Coordinates of a live external id.
    pub(crate) fn coords_of(&self, ext: u32) -> Option<&[f64]> {
        self.coords.get(ext as usize).and_then(|c| c.as_deref())
    }

    /// Whether `coords` sits at Euclidean distance exactly zero from a
    /// live point (the cover constructions reject duplicate points);
    /// returns the colliding id. Uses the workspace's sanctioned
    /// bit-exact zero test, mirroring the `Metric` diagonal contract.
    pub(crate) fn find_duplicate(&self, coords: &[f64]) -> Option<u32> {
        self.coords.iter().enumerate().find_map(|(i, c)| {
            let c = c.as_deref()?;
            let d2 = c
                .iter()
                .zip(coords)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            hopspan_metric::exactly_zero(d2).then_some(i as u32)
        })
    }

    /// The live external id nearest to `coords` under the Euclidean
    /// distance, ties broken by the lower id (deterministic). `None`
    /// only for an empty ledger.
    pub(crate) fn nearest_live(&self, coords: &[f64]) -> Option<u32> {
        let mut best: Option<(f64, u32)> = None;
        for (i, c) in self.coords.iter().enumerate() {
            let Some(c) = c else { continue };
            let d = c
                .iter()
                .zip(coords)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, i as u32));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Commits an insert: allocates the next external id, stores the
    /// coordinates, bumps the mutation sequence and the dirty counter
    /// of `perturbed_tree` (the home tree of the nearest live point —
    /// the first net level the new point perturbs). Returns the id.
    pub(crate) fn apply_insert(&mut self, coords: Vec<f64>, perturbed_tree: Option<usize>) -> u32 {
        let ext = self.coords.len() as u32;
        self.coords.push(Some(coords));
        self.live += 1;
        self.seq += 1;
        self.bump_dirty(perturbed_tree);
        ext
    }

    /// Commits a remove: drops the coordinates, bumps the mutation
    /// sequence and the dirty counter of the point's home tree.
    pub(crate) fn apply_remove(&mut self, ext: u32, perturbed_tree: Option<usize>) {
        self.coords[ext as usize] = None;
        self.live -= 1;
        self.seq += 1;
        self.bump_dirty(perturbed_tree);
    }

    fn bump_dirty(&mut self, tree: Option<usize>) {
        match tree {
            Some(t) if t < self.dirty.len() => self.dirty[t] += 1,
            // No attributable tree (or a stale index): charge the first
            // counter so the mutation still counts toward the threshold.
            _ => {
                if let Some(d) = self.dirty.first_mut() {
                    *d += 1;
                }
            }
        }
    }

    /// Mutations not yet reflected in the published epoch.
    pub(crate) fn pending(&self) -> u64 {
        self.seq - self.applied_seq
    }

    /// The hottest per-tree dirty count.
    pub(crate) fn max_dirty(&self) -> u32 {
        self.dirty.iter().copied().max().unwrap_or(0)
    }

    /// Whether the builder should start (or re-run) a rebuild: there is
    /// pending work and either a flush forced it or an amortization
    /// threshold (per-tree dirty count, global pending cap) tripped.
    pub(crate) fn rebuild_due(&self, dirty_threshold: u32, max_pending: u64) -> bool {
        self.pending() > 0
            && (self.force || self.max_dirty() >= dirty_threshold || self.pending() >= max_pending)
    }

    /// Forces the next rebuild regardless of thresholds (`flush`).
    pub(crate) fn request_flush(&mut self) {
        self.force = true;
    }

    /// Cuts the log for a rebuild: snapshots the live point set in
    /// ascending external-id order and marks the builder busy.
    pub(crate) fn cut(&mut self) -> BuildCut {
        self.building = true;
        let points = self
            .coords
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.as_ref().map(|coords| CutPoint {
                    ext: i as u32,
                    coords: coords.clone(),
                })
            })
            .collect();
        BuildCut {
            points,
            seq: self.seq,
        }
    }

    /// Commits a successful rebuild: the published epoch now covers
    /// `cut_seq`, the dirty counters restart over the new epoch's
    /// `tree_count` trees (mutations that raced the build re-count
    /// toward the next threshold via `pending()`), and the rebuild
    /// wall time is recorded for tail-latency telemetry.
    pub(crate) fn commit(&mut self, cut_seq: u64, tree_count: usize, nanos: u64) {
        self.applied_seq = cut_seq;
        self.dirty = vec![0; tree_count];
        self.building = false;
        self.rebuild_nanos.push(nanos);
        // A flush stays in force until everything it saw is applied.
        self.force = self.applied_seq != self.seq && self.force;
    }

    /// Records a failed (contained) rebuild attempt; the previous epoch
    /// stays published and the pending log is untouched.
    pub(crate) fn abort_build(&mut self) {
        self.building = false;
        self.failed_rebuilds += 1;
    }

    /// Rebuild attempts that failed so far.
    pub(crate) fn failed_rebuilds(&self) -> u64 {
        self.failed_rebuilds
    }

    /// Whether every accepted mutation is reflected in the published
    /// epoch (the `flush` condition).
    pub(crate) fn drained(&self) -> bool {
        self.applied_seq == self.seq && !self.building
    }

    /// Arms the chaos knob: the next `n` rebuild attempts panic.
    pub(crate) fn arm_rebuild_failures(&mut self, n: u32) {
        self.fail_rebuilds = n;
    }

    /// Consumes one armed rebuild failure, if any.
    pub(crate) fn take_fail_token(&mut self) -> bool {
        if self.fail_rebuilds > 0 {
            self.fail_rebuilds -= 1;
            true
        } else {
            false
        }
    }

    /// Requests builder shutdown (called from `Drop`).
    pub(crate) fn request_shutdown(&mut self) {
        self.shutdown = true;
    }

    /// Whether shutdown was requested.
    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Drains the recorded rebuild wall times (nanoseconds).
    pub(crate) fn drain_rebuild_nanos(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.rebuild_nanos)
    }
}
