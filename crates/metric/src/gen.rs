//! Deterministic workload generators (all take an explicit RNG).
//!
//! These produce the inputs used throughout the test suite and the
//! experiment harness: Euclidean point sets of controlled shape, tree
//! metrics of extremal shapes (paths, stars, caterpillars, balanced trees),
//! grid graphs for the planar experiments, and general metrics.

use hopspan_treealg::RootedTree;
use rand::Rng;

use crate::{EuclideanSpace, Graph, MatrixMetric};

/// `n` points drawn uniformly from the unit cube `[0, 1]^dim`.
pub fn uniform_points<R: Rng>(n: usize, dim: usize, rng: &mut R) -> EuclideanSpace {
    let coords = (0..n * dim).map(|_| rng.gen::<f64>()).collect();
    EuclideanSpace::new(coords, dim)
}

/// `n` points in `[0, 1]^dim` grouped into `clusters` Gaussian-ish blobs of
/// radius `spread`.
pub fn clustered_points<R: Rng>(
    n: usize,
    dim: usize,
    clusters: usize,
    spread: f64,
    rng: &mut R,
) -> EuclideanSpace {
    assert!(clusters > 0, "need at least one cluster");
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let mut coords = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = &centers[i % clusters];
        for d in 0..dim {
            coords.push(c[d] + (rng.gen::<f64>() - 0.5) * 2.0 * spread);
        }
    }
    EuclideanSpace::new(coords, dim)
}

/// `n` points on a line with exponentially growing gaps — a doubling metric
/// with aspect ratio ~2^n, the adversarial case for `log ρ`-type schemes.
pub fn exponential_line(n: usize) -> EuclideanSpace {
    let mut coords = Vec::with_capacity(n);
    let mut x = 0.0f64;
    let mut gap = 1.0f64;
    for _ in 0..n {
        coords.push(x);
        x += gap;
        gap *= 2.0;
    }
    EuclideanSpace::new(coords, 1)
}

/// Unwraps a constructor result that is infallible by generator
/// construction (e.g. edge lists built as explicit trees). Funnels all
/// generator-side unwrapping through one audited site.
fn assume_valid<T, E: std::fmt::Debug>(r: Result<T, E>, what: &str) -> T {
    // hopspan:allow(panic-in-lib) -- generators construct their inputs to satisfy the invariant by design
    r.expect(what)
}

/// A uniformly random recursive tree: vertex `v ≥ 1` attaches to a uniform
/// parent in `0..v` with weight in `[1, 2)`.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> RootedTree {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n)
        .map(|v| (rng.gen_range(0..v), v, 1.0 + rng.gen::<f64>()))
        .collect();
    assume_valid(
        RootedTree::from_edges(n, 0, &edges),
        "generated edges form a tree",
    )
}

/// The path `0 - 1 - … - n-1` with unit weights, rooted at 0.
pub fn path_tree(n: usize) -> RootedTree {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n).map(|v| (v - 1, v, 1.0)).collect();
    assume_valid(RootedTree::from_edges(n, 0, &edges), "path is a tree")
}

/// The star with center 0 and `n - 1` unit-weight leaves.
pub fn star_tree(n: usize) -> RootedTree {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n).map(|v| (0, v, 1.0)).collect();
    assume_valid(RootedTree::from_edges(n, 0, &edges), "star is a tree")
}

/// A caterpillar: a spine of `spine` vertices with `legs` unit-weight
/// leaves per spine vertex.
pub fn caterpillar_tree(spine: usize, legs: usize) -> RootedTree {
    assert!(spine >= 1);
    let n = spine * (legs + 1);
    let mut edges = Vec::with_capacity(n - 1);
    for i in 1..spine {
        edges.push((i - 1, i, 1.0));
    }
    for s in 0..spine {
        for l in 0..legs {
            edges.push((s, spine + s * legs + l, 1.0));
        }
    }
    assume_valid(
        RootedTree::from_edges(n, 0, &edges),
        "caterpillar is a tree",
    )
}

/// A complete binary tree on `n` vertices (heap indexing) with unit
/// weights.
pub fn balanced_binary_tree(n: usize) -> RootedTree {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n).map(|v| ((v - 1) / 2, v, 1.0)).collect();
    assume_valid(
        RootedTree::from_edges(n, 0, &edges),
        "binary tree is a tree",
    )
}

/// The `w × h` grid graph with unit weights (a canonical planar graph).
pub fn grid_graph(w: usize, h: usize) -> Graph {
    assert!(w >= 1 && h >= 1);
    let id = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y), 1.0));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1), 1.0));
            }
        }
    }
    assume_valid(Graph::new(w * h, &edges), "grid edges valid")
}

/// The `w × h` grid with random weights in `[1, 2)` (still planar).
pub fn weighted_grid_graph<R: Rng>(w: usize, h: usize, rng: &mut R) -> Graph {
    let base = grid_graph(w, h);
    let edges: Vec<_> = base
        .edges()
        .iter()
        .map(|&(u, v, _)| (u, v, 1.0 + rng.gen::<f64>()))
        .collect();
    assume_valid(Graph::new(w * h, &edges), "grid edges valid")
}

/// A unit-ball graph (the intro's practical restriction of doubling
/// metrics): `n` uniform points in `[0, 1]^dim` with an edge between every
/// pair at distance at most `radius`, weighted by the Euclidean distance.
/// Returns the points together with the graph; the graph may be
/// disconnected for small radii.
pub fn unit_ball_graph<R: Rng>(
    n: usize,
    dim: usize,
    radius: f64,
    rng: &mut R,
) -> (EuclideanSpace, Graph) {
    let pts = uniform_points(n, dim, rng);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = crate::Metric::dist(&pts, i, j);
            if d <= radius {
                edges.push((i, j, d));
            }
        }
    }
    let g = assume_valid(Graph::new(n, &edges), "edges valid");
    (pts, g)
}

/// A random general metric: all pairwise distances drawn uniformly from
/// `[1, 2)`, which satisfies the triangle inequality by construction.
pub fn random_bounded_metric<R: Rng>(n: usize, rng: &mut R) -> MatrixMetric {
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = 1.0 + rng.gen::<f64>();
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    assume_valid(MatrixMetric::new(n, d), "bounded random matrix is a metric")
}

/// A "hard" general metric: the shortest-path closure of a sparse random
/// connected graph with weights in `[1, 2)`. Unlike
/// [`random_bounded_metric`], distances here span a wide range.
pub fn random_graph_metric<R: Rng>(n: usize, extra_edges: usize, rng: &mut R) -> MatrixMetric {
    assert!(n >= 1);
    let mut edges: Vec<(usize, usize, f64)> = (1..n)
        .map(|v| (rng.gen_range(0..v), v, 1.0 + rng.gen::<f64>()))
        .collect();
    for _ in 0..extra_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v, 1.0 + rng.gen::<f64>()));
        }
    }
    let g = assume_valid(Graph::new(n, &edges), "random edges valid");
    let gm = assume_valid(
        crate::GraphMetric::new(&g),
        "spanning-tree edges keep it connected",
    );
    MatrixMetric::from_metric(&gm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate_metric, Metric};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn uniform_points_in_cube() {
        let s = uniform_points(50, 3, &mut rng());
        assert_eq!(s.len(), 50);
        for i in 0..50 {
            for &c in s.point(i) {
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = uniform_points(10, 2, &mut rng());
        let b = uniform_points(10, 2, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_points_cluster() {
        let s = clustered_points(60, 2, 3, 0.01, &mut rng());
        assert_eq!(s.len(), 60);
        // Points in the same cluster (same index mod 3) are close.
        assert!(s.dist(0, 3) < 0.1);
    }

    #[test]
    fn exponential_line_aspect() {
        let s = exponential_line(10);
        assert!(crate::aspect_ratio(&s) > 100.0);
        validate_metric(&s).unwrap();
    }

    #[test]
    fn tree_shapes() {
        assert_eq!(path_tree(5).depth(4), 4);
        assert_eq!(star_tree(5).depth(4), 1);
        let cat = caterpillar_tree(4, 2);
        assert_eq!(cat.len(), 12);
        assert_eq!(balanced_binary_tree(15).depth(14), 3);
        let rt = random_tree(30, &mut rng());
        assert_eq!(rt.len(), 30);
    }

    #[test]
    fn grid_is_connected_planar_sized() {
        let g = grid_graph(5, 4);
        assert_eq!(g.len(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 5 * 3 + 16 - 16 + 15 - 15); // 31
        assert!(g.is_connected());
        let wg = weighted_grid_graph(3, 3, &mut rng());
        assert!(wg.is_connected());
    }

    #[test]
    fn unit_ball_graph_edges_respect_radius() {
        let (pts, g) = unit_ball_graph(40, 2, 0.4, &mut rng());
        for &(u, v, w) in g.edges() {
            assert!(w <= 0.4 + 1e-12);
            assert!((w - pts.dist(u, v)).abs() < 1e-12);
        }
        // Large radius connects everything.
        let (_, g2) = unit_ball_graph(20, 2, 2.0, &mut rng());
        assert!(g2.is_connected());
    }

    #[test]
    fn random_metrics_are_metrics() {
        let m = random_bounded_metric(12, &mut rng());
        validate_metric(&m).unwrap();
        let g = random_graph_metric(12, 8, &mut rng());
        validate_metric(&g).unwrap();
    }
}
