//! Exact minimum spanning trees of metric spaces (Prim, O(n²)).
//!
//! The paper's lightness measure normalizes spanner weight by
//! `w(MST(M_X))`; the approximate-MST application (§5.5) needs a seed tree
//! of weight ≤ (1+ε)·MST. We use the exact MST for both (see DESIGN.md §4
//! for why this substitution for \[Cha08\] is sound).

use crate::Metric;

/// Computes an exact MST of `m` with Prim's algorithm in O(n²) time.
/// Returns the edge list `(u, v, weight)`; empty for n ≤ 1.
///
/// # Examples
///
/// ```
/// use hopspan_metric::{minimum_spanning_tree, EuclideanSpace};
///
/// let m = EuclideanSpace::from_points(&[vec![0.0], vec![1.0], vec![3.0]]);
/// let mst = minimum_spanning_tree(&m);
/// assert_eq!(mst.len(), 2);
/// assert_eq!(mst.iter().map(|e| e.2).sum::<f64>(), 3.0);
/// ```
pub fn minimum_spanning_tree<M: Metric>(m: &M) -> Vec<(usize, usize, f64)> {
    let n = m.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for j in 1..n {
        best[j] = m.dist(0, j);
        best_from[j] = 0;
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best[j] < pick_d {
                pick = j;
                pick_d = best[j];
            }
        }
        debug_assert!(pick != usize::MAX, "metric distances must be finite");
        in_tree[pick] = true;
        edges.push((best_from[pick], pick, pick_d));
        for j in 0..n {
            if !in_tree[j] {
                let d = m.dist(pick, j);
                if d < best[j] {
                    best[j] = d;
                    best_from[j] = pick;
                }
            }
        }
    }
    edges
}

/// Total weight of the MST of `m`.
pub fn mst_weight<M: Metric>(m: &M) -> f64 {
    minimum_spanning_tree(m).iter().map(|&(_, _, w)| w).sum()
}

/// Lightness of a spanner edge set with respect to `m`:
/// `w(edges) / w(MST(m))`. Returns ∞ when the MST weight is zero but the
/// spanner weight is positive, and 1.0 when both are zero.
pub fn spanner_lightness<M: Metric>(m: &M, edges: &[(usize, usize, f64)]) -> f64 {
    let w: f64 = edges.iter().map(|&(_, _, w)| w).sum();
    let base = mst_weight(m);
    if base > 0.0 {
        w / base
    } else if w > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

/// Maximum stretch of a spanner edge set over `m`: the max over pairs of
/// (shortest-path distance in the spanner graph) / (metric distance).
/// Returns ∞ if the spanner is disconnected. O(n·(m + n log n)).
pub fn spanner_max_stretch<M: Metric>(m: &M, edges: &[(usize, usize, f64)]) -> f64 {
    let n = m.len();
    let g = match crate::Graph::new(n, edges) {
        Ok(g) => g,
        Err(_) => return f64::INFINITY,
    };
    let mut worst: f64 = 1.0;
    for s in 0..n {
        let dist = g.dijkstra(s);
        for t in (s + 1)..n {
            let d = m.dist(s, t);
            if !dist[t].is_finite() {
                return f64::INFINITY;
            }
            if d > 0.0 {
                worst = worst.max(dist[t] / d);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EuclideanSpace;

    #[test]
    fn mst_of_line() {
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![(i * i) as f64]).collect();
        let s = EuclideanSpace::from_points(&pts);
        let mst = minimum_spanning_tree(&s);
        assert_eq!(mst.len(), 4);
        // Consecutive points on a line form the MST.
        let w = mst_weight(&s);
        assert!((w - 16.0).abs() < 1e-9); // 1 + 3 + 5 + 7
    }

    #[test]
    fn mst_small_and_empty() {
        let one = EuclideanSpace::from_points(&[vec![0.0]]);
        assert!(minimum_spanning_tree(&one).is_empty());
        assert_eq!(mst_weight(&one), 0.0);
    }

    #[test]
    fn mst_matches_brute_force_on_square() {
        let s = EuclideanSpace::from_points(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]);
        assert!((mst_weight(&s) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stretch_of_mst_and_complete() {
        let s = EuclideanSpace::from_points(&[vec![0.0], vec![1.0], vec![3.0]]);
        let mst = minimum_spanning_tree(&s);
        assert!((spanner_max_stretch(&s, &mst) - 1.0).abs() < 1e-9);
        // Disconnected spanner has infinite stretch.
        assert!(spanner_max_stretch(&s, &[(0, 1, 1.0)]).is_infinite());
    }

    #[test]
    fn lightness() {
        let s = EuclideanSpace::from_points(&[vec![0.0], vec![1.0], vec![2.0]]);
        // MST weight 2. A spanner with all three edges weighs 1+1+2 = 4.
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)];
        assert!((spanner_lightness(&s, &edges) - 2.0).abs() < 1e-9);
    }
}
