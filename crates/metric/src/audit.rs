//! Pre-construction metric auditing.
//!
//! The constructors of the stack ([`MatrixMetric::new`] and friends)
//! reject inputs that break the metric axioms, but they stop at the
//! *first* violation and some checks (the triangle inequality) are too
//! expensive to run unconditionally. [`MetricAudit`] is the offline
//! companion: it scans a metric (or a raw matrix that never made it
//! into one) and reports *all* the ways it is broken, capped and
//! deterministic, so chaos harnesses and data-ingestion pipelines can
//! explain a rejection instead of merely observing it.
//!
//! The audit never panics and never constructs anything: it only reads
//! distances.

use std::fmt;

use crate::space::{exactly_zero, MatrixMetric, Metric};

/// Findings are capped at this many entries; the cap keeps audits of
/// pathological inputs (e.g. an all-NaN matrix) small and cheap.
pub const MAX_AUDIT_FINDINGS: usize = 64;

/// The triangle inequality is O(n³); audits skip it above this size
/// unless forced via [`MetricAudit::of_metric_with_triangle`].
pub const TRIANGLE_AUDIT_LIMIT: usize = 256;

/// Two points closer than `dmax * NEAR_DUPLICATE_REL` are flagged as
/// near-duplicates: legal, but a numerical hazard for net hierarchies
/// (the scale range grows with log(Φ)).
pub const NEAR_DUPLICATE_REL: f64 = 1e-9;

/// One way an input fails (or endangers) the metric contract.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AuditFinding {
    /// A row has a different length than the matrix (raw matrices only).
    RaggedRow {
        /// The offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// The expected length (the number of rows).
        expected: usize,
    },
    /// An entry is NaN or infinite.
    NonFinite {
        /// Row of the offending entry.
        i: usize,
        /// Column of the offending entry.
        j: usize,
        /// The offending value.
        value: f64,
    },
    /// An entry is negative.
    Negative {
        /// Row of the offending entry.
        i: usize,
        /// Column of the offending entry.
        j: usize,
        /// The offending value.
        value: f64,
    },
    /// `d(i, i) != 0`.
    NonZeroDiagonal {
        /// The offending index.
        i: usize,
        /// The diagonal value.
        value: f64,
    },
    /// `d(i, j) != d(j, i)` beyond tolerance.
    Asymmetry {
        /// Row index.
        i: usize,
        /// Column index.
        j: usize,
        /// `|d(i, j) - d(j, i)|`.
        delta: f64,
    },
    /// `d(i, k) > d(i, j) + d(j, k)` beyond tolerance.
    TriangleViolation {
        /// First endpoint.
        i: usize,
        /// The intermediate point.
        j: usize,
        /// Second endpoint.
        k: usize,
        /// `d(i, k) - (d(i, j) + d(j, k))`.
        excess: f64,
    },
    /// Two distinct points at distance zero.
    DuplicatePoints {
        /// One of the coinciding points.
        i: usize,
        /// The other.
        j: usize,
    },
    /// Two distinct points much closer than the diameter
    /// (see [`NEAR_DUPLICATE_REL`]): legal but numerically hazardous.
    NearDuplicate {
        /// One of the close points.
        i: usize,
        /// The other.
        j: usize,
        /// Their distance.
        dist: f64,
    },
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditFinding::RaggedRow { row, len, expected } => {
                write!(f, "row {row} has length {len}, expected {expected}")
            }
            AuditFinding::NonFinite { i, j, value } => {
                write!(f, "d({i}, {j}) = {value} is not finite")
            }
            AuditFinding::Negative { i, j, value } => {
                write!(f, "d({i}, {j}) = {value} is negative")
            }
            AuditFinding::NonZeroDiagonal { i, value } => {
                write!(f, "d({i}, {i}) = {value} is not zero")
            }
            AuditFinding::Asymmetry { i, j, delta } => {
                write!(f, "d({i}, {j}) and d({j}, {i}) differ by {delta}")
            }
            AuditFinding::TriangleViolation { i, j, k, excess } => {
                write!(
                    f,
                    "d({i}, {k}) exceeds d({i}, {j}) + d({j}, {k}) by {excess}"
                )
            }
            AuditFinding::DuplicatePoints { i, j } => {
                write!(f, "points {i} and {j} coincide")
            }
            AuditFinding::NearDuplicate { i, j, dist } => {
                write!(f, "points {i} and {j} are near-duplicates (d = {dist})")
            }
        }
    }
}

/// The result of auditing a metric (or raw matrix): every violation
/// found in deterministic scan order, capped at [`MAX_AUDIT_FINDINGS`].
#[derive(Debug, Clone, Default)]
pub struct MetricAudit {
    /// The findings, in scan order (entry checks first, then pairwise
    /// duplicates, then triangles).
    pub findings: Vec<AuditFinding>,
    /// True if the cap was hit and further findings were dropped.
    pub truncated: bool,
    /// Whether the O(n³) triangle scan ran (skipped above
    /// [`TRIANGLE_AUDIT_LIMIT`] points unless forced).
    pub triangle_checked: bool,
}

impl MetricAudit {
    /// Audits a metric via its [`Metric`] interface. The triangle scan
    /// runs only for `metric.len() <= TRIANGLE_AUDIT_LIMIT`.
    pub fn of_metric<M: Metric>(metric: &M) -> Self {
        Self::audit_dist(metric.len(), |i, j| metric.dist(i, j), None)
    }

    /// Like [`MetricAudit::of_metric`], with the triangle scan forced on
    /// or off regardless of size.
    pub fn of_metric_with_triangle<M: Metric>(metric: &M, triangle: bool) -> Self {
        Self::audit_dist(metric.len(), |i, j| metric.dist(i, j), Some(triangle))
    }

    /// Audits a raw square-ish matrix of distances — the form an input
    /// takes *before* [`MatrixMetric::new`] accepts or rejects it.
    /// Ragged rows are reported as findings and their missing entries
    /// skipped rather than panicking on an out-of-bounds index.
    pub fn of_matrix(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let mut audit = MetricAudit::default();
        for (row, r) in rows.iter().enumerate() {
            if r.len() != n {
                audit.push(AuditFinding::RaggedRow {
                    row,
                    len: r.len(),
                    expected: n,
                });
            }
        }
        if audit.findings.is_empty() {
            return Self::audit_dist(n, |i, j| rows[i][j], None);
        }
        // Ragged input: audit only the rectangular prefix that exists.
        let m = rows.iter().map(Vec::len).min().unwrap_or(0).min(n);
        let mut rest = Self::audit_dist(m, |i, j| rows[i][j], None);
        audit.truncated |= rest.truncated;
        audit.triangle_checked = rest.triangle_checked;
        for finding in rest.findings.drain(..) {
            audit.push(finding);
        }
        audit
    }

    /// True when no findings were recorded (and nothing was truncated).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && !self.truncated
    }

    fn push(&mut self, finding: AuditFinding) -> bool {
        if self.findings.len() >= MAX_AUDIT_FINDINGS {
            self.truncated = true;
            return false;
        }
        self.findings.push(finding);
        true
    }

    fn audit_dist(n: usize, dist: impl Fn(usize, usize) -> f64, triangle: Option<bool>) -> Self {
        let mut audit = MetricAudit::default();
        let tol = 1e-12;
        // Pass 1: per-entry checks, row-major.
        'entries: for i in 0..n {
            for j in 0..n {
                let d = dist(i, j);
                let ok = if !d.is_finite() {
                    audit.push(AuditFinding::NonFinite { i, j, value: d })
                } else if d < 0.0 {
                    audit.push(AuditFinding::Negative { i, j, value: d })
                } else if i == j && !exactly_zero(d) {
                    audit.push(AuditFinding::NonZeroDiagonal { i, value: d })
                } else if i < j {
                    let back = dist(j, i);
                    let delta = (d - back).abs();
                    // A NaN delta (finite d, NaN back) is asymmetric
                    // corruption too, so it must take this branch.
                    if delta.is_nan() || delta > tol {
                        audit.push(AuditFinding::Asymmetry { i, j, delta })
                    } else {
                        true
                    }
                } else {
                    true
                };
                if !ok {
                    break 'entries;
                }
            }
        }
        // Pass 2: duplicates and near-duplicates over finite entries.
        let mut dmax: f64 = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                if d.is_finite() {
                    dmax = dmax.max(d);
                }
            }
        }
        'dups: for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                let ok = if exactly_zero(d) {
                    audit.push(AuditFinding::DuplicatePoints { i, j })
                } else if d > 0.0 && d.is_finite() && d < dmax * NEAR_DUPLICATE_REL {
                    audit.push(AuditFinding::NearDuplicate { i, j, dist: d })
                } else {
                    true
                };
                if !ok {
                    break 'dups;
                }
            }
        }
        // Pass 3: triangle inequality, gated by size (O(n³)). NaN
        // comparisons are false, so poisoned entries never double-report
        // here.
        let run_triangle = triangle.unwrap_or(n <= TRIANGLE_AUDIT_LIMIT);
        audit.triangle_checked = run_triangle;
        if run_triangle {
            'tri: for i in 0..n {
                for k in 0..n {
                    if i == k {
                        continue;
                    }
                    let dik = dist(i, k);
                    for j in 0..n {
                        if j == i || j == k {
                            continue;
                        }
                        let excess = dik - (dist(i, j) + dist(j, k));
                        if excess > tol
                            && !audit.push(AuditFinding::TriangleViolation { i, j, k, excess })
                        {
                            break 'tri;
                        }
                    }
                }
            }
        }
        audit
    }
}

/// Convenience: audits, and if clean builds the [`MatrixMetric`].
///
/// # Errors
///
/// Returns the full audit when the matrix is not a clean metric, so the
/// caller can report *every* violation instead of the first.
pub fn audited_matrix_metric(rows: &[Vec<f64>]) -> Result<MatrixMetric, MetricAudit> {
    let audit = MetricAudit::of_matrix(rows);
    let fatal = audit.truncated
        || audit
            .findings
            .iter()
            .any(|f| !matches!(f, AuditFinding::NearDuplicate { .. }));
    if fatal {
        return Err(audit);
    }
    let n = rows.len();
    let flat: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
    match MatrixMetric::new(n, flat) {
        Ok(m) => Ok(m),
        // A clean audit that still fails construction would be an
        // internal inconsistency; surface it as the (empty) audit.
        Err(_) => Err(audit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_of(points: &[(f64, f64)]) -> Vec<Vec<f64>> {
        points
            .iter()
            .map(|&(x1, y1)| {
                points
                    .iter()
                    .map(|&(x2, y2)| ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn clean_metric_audits_clean() {
        let rows = matrix_of(&[(0.0, 0.0), (1.0, 0.0), (0.0, 2.0), (3.0, 3.0)]);
        let audit = MetricAudit::of_matrix(&rows);
        assert!(audit.is_clean(), "findings: {:?}", audit.findings);
        assert!(audit.triangle_checked);
        assert!(audited_matrix_metric(&rows).is_ok());
    }

    #[test]
    fn every_corruption_kind_is_reported() {
        let mut rows = matrix_of(&[(0.0, 0.0), (1.0, 0.0), (0.0, 2.0), (3.0, 3.0)]);
        rows[0][1] = f64::NAN;
        rows[2][3] = -1.0;
        rows[1][1] = 0.5;
        rows[0][3] += 0.25;
        let audit = MetricAudit::of_matrix(&rows);
        assert!(!audit.is_clean());
        let has = |pred: &dyn Fn(&AuditFinding) -> bool| audit.findings.iter().any(pred);
        assert!(has(&|f| matches!(
            f,
            AuditFinding::NonFinite { i: 0, j: 1, .. }
        )));
        assert!(has(&|f| matches!(
            f,
            AuditFinding::Negative { i: 2, j: 3, .. }
        )));
        assert!(has(&|f| matches!(
            f,
            AuditFinding::NonZeroDiagonal { i: 1, .. }
        )));
        assert!(has(&|f| matches!(
            f,
            AuditFinding::Asymmetry { i: 0, j: 3, .. }
        )));
        assert!(audited_matrix_metric(&rows).is_err());
    }

    #[test]
    fn triangle_violations_and_duplicates_are_found() {
        // d(0, 2) = 10 but d(0, 1) + d(1, 2) = 2: a gross violation.
        let rows = vec![
            vec![0.0, 1.0, 10.0],
            vec![1.0, 0.0, 1.0],
            vec![10.0, 1.0, 0.0],
        ];
        let audit = MetricAudit::of_matrix(&rows);
        assert!(audit.findings.iter().any(|f| matches!(
            f,
            AuditFinding::TriangleViolation {
                i: 0,
                j: 1,
                k: 2,
                ..
            }
        )));

        let dup = vec![
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let audit = MetricAudit::of_matrix(&dup);
        assert!(audit
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::DuplicatePoints { i: 0, j: 1 })));
    }

    #[test]
    fn near_duplicates_warn_but_do_not_reject() {
        let rows = vec![
            vec![0.0, 1e-13, 1.0],
            vec![1e-13, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let audit = MetricAudit::of_matrix(&rows);
        assert!(audit
            .findings
            .iter()
            .any(|f| matches!(f, AuditFinding::NearDuplicate { i: 0, j: 1, .. })));
        // Near-duplicates alone are advisory: construction still works.
        assert!(audited_matrix_metric(&rows).is_ok());
    }

    #[test]
    fn ragged_matrices_are_reported_not_panicked_on() {
        let rows = vec![vec![0.0, 1.0, 2.0], vec![1.0, 0.0], vec![2.0, 1.0, 0.0]];
        let audit = MetricAudit::of_matrix(&rows);
        assert!(audit.findings.iter().any(|f| matches!(
            f,
            AuditFinding::RaggedRow {
                row: 1,
                len: 2,
                expected: 3
            }
        )));
    }

    #[test]
    fn findings_are_capped_and_flagged() {
        let n = 24;
        let rows = vec![vec![f64::NAN; n]; n];
        let audit = MetricAudit::of_matrix(&rows);
        assert_eq!(audit.findings.len(), MAX_AUDIT_FINDINGS);
        assert!(audit.truncated);
        assert!(!audit.is_clean());
    }

    #[test]
    fn audit_is_deterministic() {
        let mut rows = matrix_of(&[(0.0, 0.0), (1.0, 0.0), (0.0, 2.0), (3.0, 3.0)]);
        rows[0][1] = f64::INFINITY;
        rows[1][0] = f64::INFINITY;
        let a = MetricAudit::of_matrix(&rows);
        let b = MetricAudit::of_matrix(&rows);
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.truncated, b.truncated);
    }
}
