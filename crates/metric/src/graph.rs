//! A weighted undirected graph with Dijkstra shortest paths.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Error returned when building a [`Graph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices.
        n: usize,
    },
    /// An edge weight was negative, NaN or infinite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "edge endpoint {vertex} out of range for {n} vertices")
            }
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} is negative or not finite")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A weighted undirected graph in CSR form.
///
/// # Examples
///
/// ```
/// use hopspan_metric::Graph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::new(3, &[(0, 1, 1.0), (1, 2, 2.0)])?;
/// assert_eq!(g.dijkstra(0), vec![0.0, 1.0, 3.0]);
/// assert_eq!(g.shortest_path(0, 2), Some(vec![0, 1, 2]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    start: Vec<usize>,
    targets: Vec<usize>,
    weights: Vec<f64>,
    edges: Vec<(usize, usize, f64)>,
}

#[derive(PartialEq)]
struct HeapEntry(f64, usize);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance: reverse the comparison.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Graph {
    /// Builds a graph on `n` vertices from undirected edges `(u, v, w)`.
    /// Parallel edges and self-loops are permitted (self-loops are inert).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for out-of-range endpoints or invalid
    /// weights.
    pub fn new(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self, GraphError> {
        for &(u, v, w) in edges {
            if u >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidWeight { weight: w });
            }
        }
        let mut deg = vec![0usize; n];
        for &(u, v, _) in edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut start = vec![0usize; n + 1];
        for i in 0..n {
            start[i + 1] = start[i] + deg[i];
        }
        let mut targets = vec![0usize; 2 * edges.len()];
        let mut weights = vec![0.0f64; 2 * edges.len()];
        let mut cursor = start.clone();
        for &(u, v, w) in edges {
            targets[cursor[u]] = v;
            weights[cursor[u]] = w;
            cursor[u] += 1;
            targets[cursor[v]] = u;
            weights[cursor[v]] = w;
            cursor[v] += 1;
        }
        Ok(Graph {
            n,
            start,
            targets,
            weights,
            edges: edges.to_vec(),
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edge list `(u, v, w)` as supplied.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Neighbors of `u` as `(target, weight)` pairs.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.start[u]..self.start[u + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Single-source shortest-path distances from `s` (∞ for unreachable).
    pub fn dijkstra(&self, s: usize) -> Vec<f64> {
        self.dijkstra_with_parents(s).0
    }

    /// Dijkstra returning `(distances, parents)`; `parents[s]` is `None`,
    /// as is the parent of any unreachable vertex.
    pub fn dijkstra_with_parents(&self, s: usize) -> (Vec<f64>, Vec<Option<usize>>) {
        let mut dist = vec![f64::INFINITY; self.n];
        let mut parent = vec![None; self.n];
        let mut heap = BinaryHeap::new();
        dist[s] = 0.0;
        heap.push(HeapEntry(0.0, s));
        while let Some(HeapEntry(d, u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for (v, w) in self.neighbors(u) {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = Some(u);
                    heap.push(HeapEntry(nd, v));
                }
            }
        }
        (dist, parent)
    }

    /// Shortest path from `s` to `t` as a vertex sequence, or `None` if
    /// unreachable.
    pub fn shortest_path(&self, s: usize, t: usize) -> Option<Vec<usize>> {
        let (dist, parent) = self.dijkstra_with_parents(s);
        if !dist[t].is_finite() {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while let Some(p) = parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Whether the graph is connected (true for the empty graph).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let dist = self.dijkstra(0);
        dist.iter().all(|d| d.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -3- 2 -1- 3, plus a heavy direct 0-3 edge.
        Graph::new(
            4,
            &[
                (0, 1, 1.0),
                (1, 3, 1.0),
                (0, 2, 3.0),
                (2, 3, 1.0),
                (0, 3, 10.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dijkstra_distances() {
        let g = diamond();
        let d = g.dijkstra(0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn shortest_path_reconstruction() {
        let g = diamond();
        assert_eq!(g.shortest_path(0, 3).unwrap(), vec![0, 1, 3]);
        assert_eq!(g.shortest_path(2, 1).unwrap(), vec![2, 3, 1]);
    }

    #[test]
    fn unreachable_is_none() {
        let g = Graph::new(3, &[(0, 1, 1.0)]).unwrap();
        assert!(g.shortest_path(0, 2).is_none());
        assert!(!g.is_connected());
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            Graph::new(2, &[(0, 5, 1.0)]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            Graph::new(2, &[(0, 1, -2.0)]),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn handles_parallel_edges_and_loops() {
        let g = Graph::new(2, &[(0, 1, 5.0), (0, 1, 2.0), (0, 0, 1.0)]).unwrap();
        assert_eq!(g.dijkstra(0)[1], 2.0);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new(0, &[]).unwrap();
        assert!(g.is_connected());
        assert!(g.is_empty());
    }
}
