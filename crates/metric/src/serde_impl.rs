//! Serde support (feature `serde`): every type serializes as its natural
//! construction input and deserializes through its validating constructor,
//! so crafted input cannot bypass the invariants.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::{EuclideanSpace, Graph, MatrixMetric, Metric};

#[derive(Serialize, Deserialize)]
struct SpaceProxy {
    dim: usize,
    coords: Vec<f64>,
}

impl Serialize for EuclideanSpace {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let dim = self.dim();
        let coords = (0..self.len())
            .flat_map(|i| self.point(i).to_vec())
            .collect();
        SpaceProxy { dim, coords }.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for EuclideanSpace {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let p = SpaceProxy::deserialize(deserializer)?;
        if p.dim == 0 || p.coords.len() % p.dim != 0 {
            return Err(D::Error::custom("coords length not a multiple of dim"));
        }
        if p.coords.iter().any(|c| !c.is_finite()) {
            return Err(D::Error::custom("non-finite coordinate"));
        }
        Ok(EuclideanSpace::new(p.coords, p.dim))
    }
}

#[derive(Serialize, Deserialize)]
struct MatrixProxy {
    n: usize,
    d: Vec<f64>,
}

impl Serialize for MatrixMetric {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let n = self.len();
        let mut d = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                d.push(self.dist(i, j));
            }
        }
        MatrixProxy { n, d }.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for MatrixMetric {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let p = MatrixProxy::deserialize(deserializer)?;
        MatrixMetric::new(p.n, p.d).map_err(|e| D::Error::custom(e.to_string()))
    }
}

#[derive(Serialize, Deserialize)]
struct GraphProxy {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl Serialize for Graph {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        GraphProxy {
            n: self.len(),
            edges: self.edges().to_vec(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Graph {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let p = GraphProxy::deserialize(deserializer)?;
        Graph::new(p.n, &p.edges).map_err(|e| D::Error::custom(e.to_string()))
    }
}
