//! The [`Metric`] trait and concrete metric spaces.

use std::fmt;

use hopspan_treealg::{Lca, RootedTree};

use crate::graph::Graph;

/// Error produced when constructing or validating a metric space.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MetricError {
    /// A distance entry was negative, NaN or infinite.
    InvalidDistance {
        /// Row of the offending entry.
        i: usize,
        /// Column of the offending entry.
        j: usize,
        /// The offending value.
        value: f64,
    },
    /// The matrix was not square or indices were inconsistent.
    NotSquare,
    /// `d(i, i) != 0` for some `i`.
    NonZeroDiagonal {
        /// The offending index.
        i: usize,
    },
    /// `d(i, j) != d(j, i)` for some pair.
    Asymmetric {
        /// Row index.
        i: usize,
        /// Column index.
        j: usize,
    },
    /// The triangle inequality `d(i, k) <= d(i, j) + d(j, k)` failed.
    TriangleViolation {
        /// Endpoint.
        i: usize,
        /// Midpoint.
        j: usize,
        /// Endpoint.
        k: usize,
    },
    /// The underlying graph is disconnected, so some distances are infinite.
    Disconnected,
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::InvalidDistance { i, j, value } => {
                write!(f, "invalid distance d({i},{j}) = {value}")
            }
            MetricError::NotSquare => write!(f, "distance matrix is not square"),
            MetricError::NonZeroDiagonal { i } => write!(f, "d({i},{i}) is non-zero"),
            MetricError::Asymmetric { i, j } => write!(f, "d({i},{j}) != d({j},{i})"),
            MetricError::TriangleViolation { i, j, k } => {
                write!(f, "triangle inequality fails on ({i},{j},{k})")
            }
            MetricError::Disconnected => write!(f, "graph metric is disconnected"),
        }
    }
}

impl std::error::Error for MetricError {}

/// An n-point metric space with points identified by `0..len()`.
///
/// Implementations must return symmetric, non-negative, finite distances
/// with zero diagonal; [`validate_metric`] checks the axioms exhaustively.
///
/// # Self-distance exactness contract
///
/// `dist(i, i)` must return **exactly** `0.0` — bit-exact, not merely
/// within an epsilon. Every built-in implementation satisfies this for
/// free: `EuclideanSpace` subtracts a coordinate vector from itself,
/// `MatrixMetric` validates its diagonal at construction,
/// `GraphMetric`/`TreeMetricSpace` compute self-distances as empty path
/// sums. Validators therefore check the diagonal with
/// [`exactly_zero`], the one sanctioned float-equality site of the
/// workspace, rather than an epsilon band that could mask a corrupted
/// diagonal.
pub trait Metric {
    /// Number of points.
    fn len(&self) -> usize;

    /// Distance between points `i` and `j`.
    fn dist(&self, i: usize, j: usize) -> f64;

    /// Whether the space has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Whether a self-distance honours the exactness contract of
/// [`Metric`]: the diagonal must be bit-exact `0.0` (`-0.0` compares
/// equal and is also accepted). This is the single sanctioned
/// float-equality comparison in the workspace; everything else goes
/// through epsilon bands.
#[inline]
#[must_use]
pub fn exactly_zero(d: f64) -> bool {
    // hopspan:allow(float-eq) -- the Metric contract demands a bit-exact 0.0 diagonal
    d == 0.0
}

impl<M: Metric + ?Sized> Metric for &M {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn dist(&self, i: usize, j: usize) -> f64 {
        (**self).dist(i, j)
    }
}

/// Points in ℝ^d under the Euclidean (ℓ₂) distance.
#[derive(Debug, Clone, PartialEq)]
pub struct EuclideanSpace {
    coords: Vec<f64>,
    dim: usize,
}

impl EuclideanSpace {
    /// Creates a space from row-major point coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `coords.len()` is not a multiple of `dim`.
    pub fn new(coords: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            coords.len().is_multiple_of(dim),
            "coordinate count {} not a multiple of dim {}",
            coords.len(),
            dim
        );
        EuclideanSpace { coords, dim }
    }

    /// Creates a space from a slice of points (each of equal dimension).
    ///
    /// # Panics
    ///
    /// Panics if points have inconsistent dimensions or the set is empty.
    pub fn from_points(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "need at least one point");
        let dim = points[0].len();
        let mut coords = Vec::with_capacity(points.len() * dim);
        for p in points {
            assert_eq!(p.len(), dim, "inconsistent point dimension");
            coords.extend_from_slice(p);
        }
        EuclideanSpace::new(coords, dim)
    }

    /// Dimension of the space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }
}

impl Metric for EuclideanSpace {
    #[inline]
    fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (self.point(i), self.point(j));
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

/// A metric given by an explicit symmetric distance matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixMetric {
    n: usize,
    d: Vec<f64>,
}

impl MatrixMetric {
    /// Creates a matrix metric from a row-major `n × n` matrix.
    ///
    /// Checks squareness, symmetry, zero diagonal and entry validity, but
    /// not the triangle inequality (use [`validate_metric`] for that).
    ///
    /// # Errors
    ///
    /// Returns a [`MetricError`] describing the first violated axiom.
    pub fn new(n: usize, d: Vec<f64>) -> Result<Self, MetricError> {
        if d.len() != n * n {
            return Err(MetricError::NotSquare);
        }
        for i in 0..n {
            if !exactly_zero(d[i * n + i]) {
                return Err(MetricError::NonZeroDiagonal { i });
            }
            for j in 0..n {
                let v = d[i * n + j];
                if !v.is_finite() || v < 0.0 {
                    return Err(MetricError::InvalidDistance { i, j, value: v });
                }
                if (v - d[j * n + i]).abs() > 1e-12 * v.abs().max(1.0) {
                    return Err(MetricError::Asymmetric { i, j });
                }
            }
        }
        Ok(MatrixMetric { n, d })
    }

    /// Materializes any metric into an explicit matrix (O(n²) space).
    pub fn from_metric<M: Metric>(m: &M) -> Self {
        let n = m.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = m.dist(i, j);
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        MatrixMetric { n, d }
    }
}

impl Metric for MatrixMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }
}

/// The shortest-path metric of a connected weighted graph
/// (all-pairs distances are materialized at construction).
#[derive(Debug, Clone)]
pub struct GraphMetric {
    matrix: MatrixMetric,
}

impl GraphMetric {
    /// Computes the shortest-path closure of `graph` (n Dijkstra runs).
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::Disconnected`] if some pair is unreachable.
    pub fn new(graph: &Graph) -> Result<Self, MetricError> {
        let n = graph.len();
        let mut d = vec![0.0f64; n * n];
        for s in 0..n {
            let dist = graph.dijkstra(s);
            for (t, &v) in dist.iter().enumerate() {
                if !v.is_finite() {
                    return Err(MetricError::Disconnected);
                }
                d[s * n + t] = v;
            }
        }
        Ok(GraphMetric {
            matrix: MatrixMetric { n, d },
        })
    }
}

impl Metric for GraphMetric {
    #[inline]
    fn len(&self) -> usize {
        self.matrix.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.matrix.dist(i, j)
    }
}

/// The metric induced by an edge-weighted tree (O(1) distance queries via
/// LCA).
#[derive(Debug, Clone)]
pub struct TreeMetricSpace {
    tree: RootedTree,
    lca: Lca,
}

impl TreeMetricSpace {
    /// Wraps a rooted tree as a metric space over its vertices.
    pub fn new(tree: RootedTree) -> Self {
        let lca = Lca::new(&tree);
        TreeMetricSpace { tree, lca }
    }

    /// The underlying tree.
    #[inline]
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }
}

impl Metric for TreeMetricSpace {
    #[inline]
    fn len(&self) -> usize {
        self.tree.len()
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        self.tree.distance_with(&self.lca, i, j)
    }
}

/// Exhaustively validates the metric axioms (O(n³) for the triangle
/// inequality; intended for tests and small inputs).
///
/// # Errors
///
/// Returns the first violated axiom as a [`MetricError`].
pub fn validate_metric<M: Metric>(m: &M) -> Result<(), MetricError> {
    let n = m.len();
    for i in 0..n {
        if !exactly_zero(m.dist(i, i)) {
            return Err(MetricError::NonZeroDiagonal { i });
        }
        for j in 0..n {
            let v = m.dist(i, j);
            if !v.is_finite() || v < 0.0 {
                return Err(MetricError::InvalidDistance { i, j, value: v });
            }
            if (v - m.dist(j, i)).abs() > 1e-9 * v.abs().max(1.0) {
                return Err(MetricError::Asymmetric { i, j });
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let slack = 1e-9 * (m.dist(i, j) + m.dist(j, k)).max(1.0);
                if m.dist(i, k) > m.dist(i, j) + m.dist(j, k) + slack {
                    return Err(MetricError::TriangleViolation { i, j, k });
                }
            }
        }
    }
    Ok(())
}

/// The aspect ratio ρ = (max distance) / (min positive distance), or 1.0
/// for spaces with fewer than two distinct points.
pub fn aspect_ratio<M: Metric>(m: &M) -> f64 {
    let n = m.len();
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = m.dist(i, j);
            if d > 0.0 {
                min = min.min(d);
                max = max.max(d);
            }
        }
    }
    if min.is_finite() && min > 0.0 {
        max / min
    } else {
        1.0
    }
}

/// Empirically estimates the doubling constant: the maximum, over sampled
/// balls B(x, r), of the number of r/2-net points needed to cover the ball.
/// The doubling dimension is the log₂ of the returned value.
pub fn estimate_doubling_constant<M: Metric>(m: &M) -> usize {
    let n = m.len();
    let mut worst = 1usize;
    // Deterministic sweep: for each center and a few radii, greedily cover.
    for x in 0..n {
        for &denom in &[1.0, 4.0, 16.0] {
            let rmax = (0..n).map(|j| m.dist(x, j)).fold(0.0f64, f64::max);
            let r = rmax / denom;
            if r <= 0.0 {
                continue;
            }
            let ball: Vec<usize> = (0..n).filter(|&j| m.dist(x, j) <= r).collect();
            // Greedy (r/2)-net of the ball.
            let mut net: Vec<usize> = Vec::new();
            for &p in &ball {
                if net.iter().all(|&q| m.dist(p, q) > r / 2.0) {
                    net.push(p);
                }
            }
            worst = worst.max(net.len());
        }
        if n > 64 && x >= 32 {
            break; // Cap the O(n²)-per-center sweep on large inputs.
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        let s = EuclideanSpace::from_points(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![0.0, 1.0]]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(), 2);
        assert!((s.dist(0, 1) - 5.0).abs() < 1e-12);
        assert!((s.dist(0, 2) - 1.0).abs() < 1e-12);
        assert_eq!(s.dist(1, 1), 0.0);
        validate_metric(&s).unwrap();
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn euclidean_rejects_mixed_dims() {
        EuclideanSpace::from_points(&[vec![0.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matrix_metric_validation() {
        let ok = MatrixMetric::new(2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert_eq!(ok.dist(0, 1), 1.0);
        assert!(matches!(
            MatrixMetric::new(2, vec![0.0, 1.0, 2.0, 0.0]),
            Err(MetricError::Asymmetric { .. })
        ));
        assert!(matches!(
            MatrixMetric::new(2, vec![1.0, 1.0, 1.0, 0.0]),
            Err(MetricError::NonZeroDiagonal { .. })
        ));
        assert!(matches!(
            MatrixMetric::new(2, vec![0.0, -1.0, -1.0, 0.0]),
            Err(MetricError::InvalidDistance { .. })
        ));
        assert!(matches!(
            MatrixMetric::new(2, vec![0.0; 3]),
            Err(MetricError::NotSquare)
        ));
    }

    #[test]
    fn validate_catches_triangle_violation() {
        // d(0,2) = 10 > d(0,1) + d(1,2) = 2.
        let m = MatrixMetric::new(3, vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0]).unwrap();
        assert!(matches!(
            validate_metric(&m),
            Err(MetricError::TriangleViolation { .. })
        ));
    }

    #[test]
    fn from_metric_round_trip() {
        let s = EuclideanSpace::from_points(&[vec![0.0], vec![2.0], vec![5.0]]);
        let m = MatrixMetric::from_metric(&s);
        for i in 0..3 {
            for j in 0..3 {
                assert!((m.dist(i, j) - s.dist(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tree_metric_space() {
        let tree = RootedTree::from_edges(4, 0, &[(0, 1, 2.0), (1, 2, 3.0), (0, 3, 1.0)]).unwrap();
        let m = TreeMetricSpace::new(tree);
        assert_eq!(m.dist(2, 3), 6.0);
        assert_eq!(m.dist(0, 2), 5.0);
        validate_metric(&m).unwrap();
    }

    #[test]
    fn aspect_ratio_works() {
        let s = EuclideanSpace::from_points(&[vec![0.0], vec![1.0], vec![10.0]]);
        assert!((aspect_ratio(&s) - 10.0).abs() < 1e-12);
        let single = EuclideanSpace::from_points(&[vec![0.0]]);
        assert_eq!(aspect_ratio(&single), 1.0);
    }

    #[test]
    fn doubling_constant_line_is_small() {
        let pts: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let s = EuclideanSpace::from_points(&pts);
        let c = estimate_doubling_constant(&s);
        // A line has doubling constant <= 4 under this greedy estimate.
        assert!(
            c <= 5,
            "estimated doubling constant {c} too large for a line"
        );
    }
}
