//! Metric-space abstraction and workload generators for `hopspan`.
//!
//! The paper's constructions are parameterized by an n-point metric space
//! `M_X = (X, δ_X)` viewed as a complete weighted graph. This crate
//! provides:
//!
//! * the [`Metric`] trait and concrete spaces: [`EuclideanSpace`],
//!   [`MatrixMetric`], [`GraphMetric`] (shortest-path closure of a weighted
//!   graph), [`TreeMetricSpace`];
//! * a weighted-graph substrate ([`Graph`]) with Dijkstra;
//! * workload generators (uniform/clustered Euclidean point sets, random
//!   trees, paths/stars/caterpillars, grid graphs) under explicit seeds;
//! * metric utilities: exact MST (Prim), aspect ratio, doubling-dimension
//!   estimation, metric-axiom validation.
//!
//! # Examples
//!
//! ```
//! use hopspan_metric::{gen, Metric};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let space = gen::uniform_points(100, 2, &mut rng);
//! assert_eq!(space.len(), 100);
//! let d = space.dist(3, 4);
//! assert!(d > 0.0 && d.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod gen;
mod graph;
mod mst;
#[cfg(feature = "serde")]
mod serde_impl;
mod space;

pub use audit::{
    audited_matrix_metric, AuditFinding, MetricAudit, MAX_AUDIT_FINDINGS, NEAR_DUPLICATE_REL,
    TRIANGLE_AUDIT_LIMIT,
};
pub use graph::{Graph, GraphError};
pub use mst::{minimum_spanning_tree, mst_weight, spanner_lightness, spanner_max_stretch};
pub use space::{
    aspect_ratio, estimate_doubling_constant, exactly_zero, validate_metric, EuclideanSpace,
    GraphMetric, MatrixMetric, Metric, MetricError, TreeMetricSpace,
};
