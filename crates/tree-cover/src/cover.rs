//! Dominating trees and tree covers (paper §1.2 definitions).

use std::fmt;

use hopspan_metric::Metric;
use hopspan_treealg::{Lca, RootedTree};

/// Error produced by tree-cover constructions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoverError {
    /// The metric has two points at distance zero (duplicate points), so
    /// no net hierarchy exists.
    DuplicatePoints {
        /// One of the coinciding points.
        i: usize,
        /// The other.
        j: usize,
    },
    /// The point set is empty.
    Empty,
    /// The stretch parameter is out of range.
    InvalidParameter {
        /// Human-readable description.
        what: &'static str,
    },
    /// A tree failed the domination check during validation.
    NotDominating {
        /// Tree index.
        tree: usize,
        /// First offending pair.
        pair: (usize, usize),
    },
    /// A distance was NaN, infinite or negative, so no net hierarchy
    /// (and hence no cover) exists for the metric.
    BadDistance {
        /// Row of the offending entry.
        i: usize,
        /// Column of the offending entry.
        j: usize,
        /// The offending value.
        value: f64,
    },
    /// A deep structural self-check found an internal inconsistency
    /// (see [`TreeCover::validate_structure`]).
    Corrupt {
        /// Which invariant failed.
        what: &'static str,
    },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::DuplicatePoints { i, j } => {
                write!(f, "points {i} and {j} coincide; distances must be positive")
            }
            CoverError::Empty => write!(f, "empty point set"),
            CoverError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            CoverError::NotDominating { tree, pair } => {
                write!(f, "tree {tree} not dominating on pair {pair:?}")
            }
            CoverError::BadDistance { i, j, value } => {
                write!(
                    f,
                    "distance d({i}, {j}) = {value} is not finite non-negative"
                )
            }
            CoverError::Corrupt { what } => write!(f, "corrupt cover structure: {what}"),
        }
    }
}

impl std::error::Error for CoverError {}

/// A dominating tree for (a subset of) a metric space: an edge-weighted
/// rooted tree whose vertices carry point ids, with one designated leaf
/// per covered point, such that tree distances between leaves dominate the
/// metric distances.
///
/// Internal vertices carry an *associated point* (`point_of`) — for the
/// robust covers of §4 this may be replaced by any descendant leaf's point
/// without violating the cover's stretch.
#[derive(Debug)]
pub struct DominatingTree {
    tree: RootedTree,
    lca: Lca,
    point_of: Vec<usize>,
    leaf_of: Vec<Option<usize>>,
    /// Descendant-leaf ranges: `leaf_order` lists leaf vertices in DFS
    /// order; `span[v]` is the half-open range of `leaf_order` under `v`.
    leaf_order: Vec<usize>,
    span: Vec<(usize, usize)>,
}

impl DominatingTree {
    /// Wraps a rooted tree whose vertex `v` carries point `point_of[v]`.
    /// Leaves (vertices without children) define the covered points; each
    /// point may appear at most once as a leaf.
    ///
    /// # Panics
    ///
    /// Panics if `point_of` has the wrong length, a point id is `>=
    /// n_points`, or two leaves carry the same point.
    pub fn new(tree: RootedTree, point_of: Vec<usize>, n_points: usize) -> Self {
        Self::try_new(tree, point_of, n_points)
            // hopspan:allow(panic-in-lib) -- the panicking contract is documented; builders satisfy it by construction
            .expect("well-formed dominating tree")
    }

    /// Non-panicking variant of [`DominatingTree::new`] for rebuilding a
    /// tree from untrusted (deserialized) data: the same derivation of
    /// leaf pointers and descendant-leaf spans, but every precondition
    /// violation — length mismatch, out-of-range point id (leaf *or*
    /// internal), duplicate leaf point — is reported as
    /// [`CoverError::Corrupt`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::Corrupt`] naming the violated precondition.
    pub fn try_new(
        tree: RootedTree,
        point_of: Vec<usize>,
        n_points: usize,
    ) -> Result<Self, CoverError> {
        let corrupt = |what| Err(CoverError::Corrupt { what });
        if point_of.len() != tree.len() {
            return corrupt("point_of length mismatch");
        }
        if point_of.iter().any(|&p| p >= n_points) {
            return corrupt("tree vertex point id out of range");
        }
        let lca = Lca::new(&tree);
        let mut leaf_of = vec![None; n_points];
        // DFS to compute leaf spans.
        let n = tree.len();
        let mut leaf_order = Vec::new();
        let mut span = vec![(0usize, 0usize); n];
        let mut stack: Vec<(usize, bool)> = vec![(tree.root(), false)];
        while let Some((v, processed)) = stack.pop() {
            if processed {
                span[v].1 = leaf_order.len();
                continue;
            }
            span[v].0 = leaf_order.len();
            stack.push((v, true));
            let children = tree.children(v);
            if children.is_empty() {
                let p = point_of[v];
                if leaf_of[p].is_some() {
                    return corrupt("point appears as two leaves");
                }
                leaf_of[p] = Some(v);
                leaf_order.push(v);
            } else {
                for &c in children {
                    stack.push((c, false));
                }
            }
        }
        Ok(DominatingTree {
            tree,
            lca,
            point_of,
            leaf_of,
            leaf_order,
            span,
        })
    }

    /// The underlying rooted tree.
    #[inline]
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// The LCA structure of the underlying tree.
    #[inline]
    pub fn lca(&self) -> &Lca {
        &self.lca
    }

    /// The point associated with tree vertex `v`.
    #[inline]
    pub fn point_of(&self, v: usize) -> usize {
        self.point_of[v]
    }

    /// The leaf vertex of point `p`, if this tree covers `p`.
    #[inline]
    pub fn leaf_of(&self, p: usize) -> Option<usize> {
        self.leaf_of.get(p).copied().flatten()
    }

    /// Whether this tree covers point `p`.
    #[inline]
    pub fn contains(&self, p: usize) -> bool {
        self.leaf_of(p).is_some()
    }

    /// Number of covered points.
    pub fn point_count(&self) -> usize {
        self.leaf_order.len()
    }

    /// Tree distance between the leaves of points `p` and `q` in O(1), or
    /// `None` if either is not covered.
    pub fn distance(&self, p: usize, q: usize) -> Option<f64> {
        let (a, b) = (self.leaf_of(p)?, self.leaf_of(q)?);
        Some(self.tree.distance_with(&self.lca, a, b))
    }

    /// The tree path (vertex ids) between the leaves of `p` and `q`.
    pub fn tree_path(&self, p: usize, q: usize) -> Option<Vec<usize>> {
        let (a, b) = (self.leaf_of(p)?, self.leaf_of(q)?);
        Some(self.tree.vertex_path(a, b))
    }

    /// Descendant leaves of vertex `v` (tree vertex ids, contiguous DFS
    /// range) — the `R(v)` candidate set of the fault-tolerant
    /// construction (§4.1).
    pub fn descendant_leaves(&self, v: usize) -> &[usize] {
        let (s, e) = self.span[v];
        &self.leaf_order[s..e]
    }

    /// Deep structural self-check of the dense layouts that queries
    /// trust blindly: the DFS leaf order, the per-vertex descendant-leaf
    /// spans, the leaf↔point pointers and the edge weights. O(tree
    /// size); intended for chaos harnesses and post-transport integrity
    /// checks, not the query hot path.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::Corrupt`] naming the first violated
    /// invariant.
    pub fn validate_structure(&self) -> Result<(), CoverError> {
        let n = self.tree.len();
        let corrupt = |what| Err(CoverError::Corrupt { what });
        if self.point_of.len() != n || self.span.len() != n {
            return corrupt("per-vertex table length mismatch");
        }
        for v in 0..n {
            if !self.tree.parent_weight(v).is_finite() || self.tree.parent_weight(v) < 0.0 {
                return corrupt("tree edge weight not finite non-negative");
            }
            let (s, e) = self.span[v];
            if s > e || e > self.leaf_order.len() {
                return corrupt("descendant-leaf span out of range");
            }
            if self.tree.children(v).is_empty() {
                if e != s + 1 || self.leaf_order[s] != v {
                    return corrupt("leaf vertex span must be exactly itself");
                }
                let p = self.point_of[v];
                if self.leaf_of.get(p).copied().flatten() != Some(v) {
                    return corrupt("leaf vertex not registered under its point");
                }
            }
        }
        let mut leaves = 0usize;
        for (p, &lv) in self.leaf_of.iter().enumerate() {
            let Some(v) = lv else { continue };
            leaves += 1;
            if v >= n || !self.tree.children(v).is_empty() {
                return corrupt("leaf pointer at a non-leaf vertex");
            }
            if self.point_of[v] != p {
                return corrupt("leaf pointer disagrees with the vertex's point");
            }
        }
        if leaves != self.leaf_order.len() {
            return corrupt("leaf order length disagrees with the leaf count");
        }
        for &v in &self.leaf_order {
            if v >= n {
                return corrupt("leaf order entry out of range");
            }
        }
        Ok(())
    }

    /// Checks domination: `δ_T(p, q) ≥ δ_X(p, q)` for all covered pairs.
    ///
    /// # Errors
    ///
    /// Returns the first violating pair.
    pub fn validate_dominating<M: Metric>(&self, metric: &M) -> Result<(), (usize, usize)> {
        let pts: Vec<usize> = (0..metric.len()).filter(|&p| self.contains(p)).collect();
        for (ii, &p) in pts.iter().enumerate() {
            for &q in &pts[ii + 1..] {
                // hopspan:allow(panic-in-lib) -- pts was filtered through self.contains above
                let dt = self.distance(p, q).expect("both covered");
                if dt < metric.dist(p, q) * (1.0 - 1e-9) {
                    return Err((p, q));
                }
            }
        }
        Ok(())
    }
}

/// A collection of dominating trees forming a (γ, ζ)-tree cover.
#[derive(Debug)]
pub struct TreeCover {
    trees: Vec<DominatingTree>,
}

impl TreeCover {
    /// Wraps a list of dominating trees.
    pub fn new(trees: Vec<DominatingTree>) -> Self {
        TreeCover { trees }
    }

    /// The trees of the cover.
    #[inline]
    pub fn trees(&self) -> &[DominatingTree] {
        &self.trees
    }

    /// Number of trees ζ.
    #[inline]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the cover has no trees.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The tree minimizing the tree distance between `p` and `q`, with
    /// that distance. O(ζ) per query (Theorem 1.2's selection step).
    pub fn best_tree(&self, p: usize, q: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, t) in self.trees.iter().enumerate() {
            if let Some(d) = t.distance(p, q) {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
        }
        best
    }

    /// Maximum, over all pairs of `metric`, of
    /// `min_T δ_T(p, q) / δ_X(p, q)` — the realized cover stretch
    /// (O(ζ·n²); for tests and experiments).
    pub fn measured_stretch<M: Metric>(&self, metric: &M) -> f64 {
        let n = metric.len();
        let mut worst: f64 = 1.0;
        for p in 0..n {
            for q in (p + 1)..n {
                let d = metric.dist(p, q);
                if d <= 0.0 {
                    continue;
                }
                if let Some((_, td)) = self.best_tree(p, q) {
                    worst = worst.max(td / d);
                } else {
                    return f64::INFINITY;
                }
            }
        }
        worst
    }

    /// Validates that every tree dominates the metric.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::NotDominating`] with the first violation.
    pub fn validate<M: Metric>(&self, metric: &M) -> Result<(), CoverError> {
        for (i, t) in self.trees.iter().enumerate() {
            if let Err(pair) = t.validate_dominating(metric) {
                return Err(CoverError::NotDominating { tree: i, pair });
            }
        }
        Ok(())
    }

    /// Deep structural self-check of every tree's dense layouts
    /// (see [`DominatingTree::validate_structure`]); unlike
    /// [`TreeCover::validate`] this needs no metric and runs in
    /// O(total tree vertices).
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::Corrupt`] for the first offending tree.
    pub fn validate_structure(&self) -> Result<(), CoverError> {
        for t in &self.trees {
            t.validate_structure()?;
        }
        Ok(())
    }

    /// Total number of tree vertices across the cover.
    pub fn total_tree_vertices(&self) -> usize {
        self.trees.iter().map(|t| t.tree().len()).sum()
    }

    /// Consumes the cover and returns its trees.
    pub fn into_trees(self) -> Vec<DominatingTree> {
        self.trees
    }
}

/// Helper for constructions: assembles a [`DominatingTree`] from a parent
/// arena, where internal edge weights are supplied per vertex.
pub(crate) struct TreeAssembler {
    pub parent: Vec<Option<usize>>,
    pub weight: Vec<f64>,
    pub point_of: Vec<usize>,
}

impl TreeAssembler {
    pub(crate) fn new() -> Self {
        TreeAssembler {
            parent: Vec::new(),
            weight: Vec::new(),
            point_of: Vec::new(),
        }
    }

    /// Adds a vertex with no parent yet; returns its id.
    pub(crate) fn add(&mut self, point: usize) -> usize {
        self.parent.push(None);
        self.weight.push(0.0);
        self.point_of.push(point);
        self.parent.len() - 1
    }

    /// Sets `child`'s parent and edge weight.
    pub(crate) fn attach(&mut self, child: usize, parent: usize, w: f64) {
        debug_assert!(self.parent[child].is_none(), "re-attaching vertex");
        self.parent[child] = Some(parent);
        self.weight[child] = w;
    }

    /// Finalizes into a dominating tree rooted at `root`.
    pub(crate) fn finish(self, root: usize, n_points: usize) -> DominatingTree {
        let tree = RootedTree::from_parents(root, &self.parent, &self.weight)
            // hopspan:allow(panic-in-lib) -- builders attach every child below an existing parent
            .expect("assembled parents form a tree");
        DominatingTree::new(tree, self.point_of, n_points)
    }
}

/// Test/verification helper: the weight of a leaf-to-leaf tree path after
/// substituting each internal vertex `v` by `sub(v)` (a point id), as in
/// Definition 4.1(2).
pub fn substituted_path_weight<M: Metric>(
    metric: &M,
    t: &DominatingTree,
    p: usize,
    q: usize,
    mut sub: impl FnMut(usize) -> usize,
) -> Option<f64> {
    let path = t.tree_path(p, q)?;
    let points: Vec<usize> = path
        .iter()
        .map(|&v| {
            if t.tree().child_count(v) == 0 {
                t.point_of(v)
            } else {
                sub(v)
            }
        })
        .collect();
    let mut w = 0.0;
    for win in points.windows(2) {
        w += metric.dist(win[0], win[1]);
    }
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopspan_metric::EuclideanSpace;

    fn line3() -> EuclideanSpace {
        EuclideanSpace::from_points(&[vec![0.0], vec![1.0], vec![3.0]])
    }

    /// A star tree rooted at point 0 covering all three points.
    fn star_tree(m: &EuclideanSpace) -> DominatingTree {
        let mut asm = TreeAssembler::new();
        let root = asm.add(0);
        for p in 0..3 {
            let leaf = asm.add(p);
            asm.attach(leaf, root, m.dist(0, p));
        }
        asm.finish(root, 3)
    }

    #[test]
    fn star_is_dominating() {
        let m = line3();
        let t = star_tree(&m);
        t.validate_dominating(&m).unwrap();
        assert_eq!(t.point_count(), 3);
        assert_eq!(t.distance(1, 2), Some(1.0 + 3.0));
        assert_eq!(t.distance(0, 2), Some(3.0));
    }

    #[test]
    fn descendant_leaves_cover_all() {
        let m = line3();
        let t = star_tree(&m);
        let root = t.tree().root();
        assert_eq!(t.descendant_leaves(root).len(), 3);
        for &leaf in t.descendant_leaves(root) {
            assert_eq!(t.descendant_leaves(leaf), &[leaf]);
        }
    }

    #[test]
    fn best_tree_picks_minimum() {
        let m = line3();
        // Star at 0 and star at 2.
        let t0 = star_tree(&m);
        let mut asm = TreeAssembler::new();
        let root = asm.add(2);
        for p in 0..3 {
            let leaf = asm.add(p);
            asm.attach(leaf, root, m.dist(2, p));
        }
        let t2 = asm.finish(root, 3);
        let cover = TreeCover::new(vec![t0, t2]);
        // Pair (1, 2): star at 2 gives 2.0, star at 0 gives 4.0.
        let (ti, d) = cover.best_tree(1, 2).unwrap();
        assert_eq!(ti, 1);
        assert!((d - 2.0).abs() < 1e-12);
        cover.validate(&m).unwrap();
        assert!(cover.measured_stretch(&m) <= 2.0 + 1e-9);
    }

    #[test]
    fn substitution_weight() {
        let m = line3();
        let t = star_tree(&m);
        // Substitute the root by point 2: path 1 -> root -> 2 becomes
        // d(1, 2) + d(2, 2) = 2.
        let w = substituted_path_weight(&m, &t, 1, 2, |_| 2).unwrap();
        assert!((w - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_structure_accepts_and_detects() {
        let m = line3();
        let fresh = || star_tree(&m);
        fresh().validate_structure().unwrap();
        TreeCover::new(vec![fresh(), fresh()])
            .validate_structure()
            .unwrap();

        let what = |t: DominatingTree| match t.validate_structure() {
            Err(CoverError::Corrupt { what }) => what,
            other => panic!("corruption went undetected: {other:?}"),
        };

        let mut t = fresh();
        let leaf = t.leaf_of(1).unwrap();
        t.span[leaf] = (0, t.leaf_order.len());
        assert_eq!(what(t), "leaf vertex span must be exactly itself");

        let mut t = fresh();
        t.span[0] = (2, 1);
        assert_eq!(what(t), "descendant-leaf span out of range");

        let mut t = fresh();
        let leaf = t.leaf_of(0).unwrap();
        t.point_of[leaf] = 2;
        assert_eq!(what(t), "leaf vertex not registered under its point");

        let mut t = fresh();
        t.leaf_of[1] = t.leaf_of[0];
        assert_eq!(what(t), "leaf vertex not registered under its point");

        let mut t = fresh();
        t.leaf_order.push(0);
        assert_eq!(what(t), "leaf order length disagrees with the leaf count");
    }

    #[test]
    fn try_new_rejects_bad_preconditions() {
        let what = |r: Result<DominatingTree, CoverError>| match r {
            Err(CoverError::Corrupt { what }) => what,
            other => panic!("bad precondition went undetected: {other:?}"),
        };
        let tree = || {
            RootedTree::from_edges(3, 0, &[(0, 1, 1.0), (0, 2, 1.0)])
                // three vertices: root 0 with leaves 1 and 2
                .unwrap()
        };
        assert_eq!(
            what(DominatingTree::try_new(tree(), vec![0, 1], 3)),
            "point_of length mismatch"
        );
        assert_eq!(
            what(DominatingTree::try_new(tree(), vec![0, 1, 9], 3)),
            "tree vertex point id out of range"
        );
        assert_eq!(
            what(DominatingTree::try_new(tree(), vec![0, 1, 1], 3)),
            "point appears as two leaves"
        );
        assert!(DominatingTree::try_new(tree(), vec![0, 1, 2], 3).is_ok());
    }

    #[test]
    fn partial_tree_distance_none() {
        let _m = line3();
        let mut asm = TreeAssembler::new();
        let root = asm.add(0);
        let leaf = asm.add(1);
        asm.attach(leaf, root, 1.0);
        let t = asm.finish(root, 3);
        assert!(t.distance(1, 2).is_none());
        assert!(!t.contains(2));
        // Root is itself a... no: root has a child, so only point 1 is a leaf.
        assert_eq!(t.point_count(), 1);
    }
}
