//! The Robust Tree Cover Theorem for doubling metrics (paper Theorem 4.1,
//! §4.2 Step 2, with the §4.3 merging rule).
//!
//! For every slot `j < σ₃` and residue `p < L` (`L = ⌈log 1/ε⌉`), a tree
//! `T_{j,p}` is grown bottom-up through the levels `i ≡ p (mod L)`: for
//! every pair `(x, y)` of the `j`-th pairing set of 𝒞_i, the trees of `x`
//! and `y` and all trees holding a lower-net point near either are merged
//! under a fresh internal node; additionally (§4.3) every net point `z ∈
//! N_i` absorbs the trees holding lower-net points near `z`, which keeps
//! the invariant that every tree of forest `F_i` contains a point of
//! `N_i`. Internal nodes are *associated* with a net point that is always
//! one of their descendant leaves — the robustness property (Definition
//! 4.1(2)) that the fault-tolerant constructions of §4 rely on.

use std::collections::HashMap;

use hopspan_metric::Metric;
use hopspan_pipeline::BuildStats;

use crate::cover::TreeAssembler;
use crate::nets::{exp2, NetHierarchy};
use crate::pairing::PairingCover;
use crate::{CoverError, DominatingTree, TreeCover};

/// A robust `(1+O(ε), ε^{-O(d)})`-tree cover for doubling metrics.
///
/// # Examples
///
/// ```
/// use hopspan_metric::EuclideanSpace;
/// use hopspan_tree_cover::RobustTreeCover;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let line = EuclideanSpace::from_points(&[vec![0.0], vec![1.0], vec![2.0], vec![4.0]]);
/// let cover = RobustTreeCover::new(&line, 0.25)?;
/// // Some tree approximates every pairwise distance within 1 + O(ε).
/// let (_, d) = cover.cover().best_tree(0, 3).expect("pair covered");
/// assert!(d >= 4.0 && d <= 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RobustTreeCover {
    cover: TreeCover,
    nets: NetHierarchy,
    pairing: PairingCover,
    eps: f64,
    period: usize,
    slots: usize,
}

/// Union-find over points, whose roots carry the current tree-node id.
struct Forest {
    dsu: Vec<usize>,
    node_of_root: Vec<usize>,
}

impl Forest {
    fn new(leaf_nodes: &[usize]) -> Self {
        Forest {
            dsu: (0..leaf_nodes.len()).collect(),
            node_of_root: leaf_nodes.to_vec(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.dsu[r] != r {
            r = self.dsu[r];
        }
        let mut c = x;
        while self.dsu[c] != r {
            let next = self.dsu[c];
            self.dsu[c] = r;
            c = next;
        }
        r
    }

    /// The current tree node of the tree containing point `x`.
    fn node_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.node_of_root[r]
    }

    /// Merges the trees of `points` under `new_node`; the DSU root of the
    /// merged class gets `new_node` as its tree node.
    fn union_under(&mut self, points: &[usize], new_node: usize) {
        let mut iter = points.iter();
        let Some(&first) = iter.next() else {
            // An empty merge is a no-op rather than a panic.
            return;
        };
        let mut root = self.find(first);
        for &p in iter {
            let r = self.find(p);
            if r != root {
                self.dsu[r] = root;
                root = self.find(first);
            }
        }
        self.node_of_root[root] = new_node;
    }
}

impl RobustTreeCover {
    /// Builds the robust tree cover with parameter `eps ∈ (0, 1]`.
    ///
    /// The construction parameter is used exactly as in §4.2 (separation
    /// `(3/ε)2^i`, pairing radius `2^i/ε`, period `L = ⌈log 1/ε⌉`); the
    /// worst-case stretch guarantee is `1 + O(ε)` and
    /// [`RobustTreeCover::cover`]`.measured_stretch` reports the realized
    /// value.
    ///
    /// # Errors
    ///
    /// Returns a [`CoverError`] for empty/duplicate inputs or `eps`
    /// outside `(0, 1]`.
    pub fn new<M: Metric + Sync>(metric: &M, eps: f64) -> Result<Self, CoverError> {
        Self::new_with_stats(metric, eps, None).map(|(c, _)| c)
    }

    /// Like [`RobustTreeCover::new`], with explicit control over the
    /// per-tree worker count (`None` = automatic, see
    /// [`hopspan_pipeline::resolve_workers`]) and the per-phase build
    /// telemetry returned alongside the cover.
    ///
    /// # Errors
    ///
    /// Returns a [`CoverError`] for empty/duplicate inputs or `eps`
    /// outside `(0, 1]`.
    pub fn new_with_stats<M: Metric + Sync>(
        metric: &M,
        eps: f64,
        workers: Option<usize>,
    ) -> Result<(Self, BuildStats), CoverError> {
        if eps <= 0.0 || eps.is_nan() || eps > 1.0 {
            return Err(CoverError::InvalidParameter {
                what: "eps must be in (0, 1]",
            });
        }
        let n = metric.len();
        // Period L = ⌈log 1/ε⌉ + 2: the two extra levels shrink lower-
        // forest diameters by an extra factor 4, which closes the Lemma
        // 4.3 diameter induction for every ε ≤ 5/8 instead of only ε ≤
        // 1/8 (D_i ≤ (1/ε+4)2^i + 2(2·2^i + 2D_{i'}) with D_{i'} ≤
        // (1/ε+24)·ε·2^i/4 gives D_i ≤ (1/ε+9+24ε)2^i ≤ (1/ε+24)2^i).
        let period = (1.0 / eps).log2().ceil().max(1.0) as usize + 2;
        // Scale range: the pairing rule needs every level of equation (2),
        // down to ⌊log₂(4ε·δ_min)⌋; the merge invariant ("every tree holds
        // a current-net point") additionally needs the lowest *processed*
        // level's companion nets to contain every point, i.e. scales below
        // ⌊log₂ δ_min⌋. `period` extra levels below serve as companions.
        let workers = hopspan_pipeline::resolve_workers(workers);
        let mut stats = BuildStats::new(workers);
        let scan = std::time::Instant::now();
        let mut dmin = f64::INFINITY;
        let mut dmax: f64 = 0.0;
        let mut closest = (0usize, 0usize);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.dist(i, j);
                if !d.is_finite() || d < 0.0 {
                    // NaN slips past both comparisons below and an
                    // infinite dmax overflows the scale exponents; fail
                    // typed before any arithmetic sees the value.
                    return Err(CoverError::BadDistance { i, j, value: d });
                }
                if d < dmin {
                    dmin = d;
                    closest = (i, j);
                }
                dmax = dmax.max(d);
            }
        }
        stats.record_phase("scan", scan.elapsed());
        if dmin <= 0.0 {
            // A zero-distance pair would send the scale computation below
            // to log₂(0) = -∞; reject it with the dedicated error instead.
            return Err(CoverError::DuplicatePoints {
                i: closest.0,
                j: closest.1,
            });
        }
        let nets = stats.phase("nets", || {
            if n <= 1 || !dmin.is_finite() {
                NetHierarchy::new(metric, 0, 0)
            } else {
                let low_main =
                    ((4.0 * eps * dmin).log2().floor() as i32).min(dmin.log2().floor() as i32 - 1);
                let high = ((2.0 * eps * dmax).log2().ceil() as i32 + 1).max(low_main);
                NetHierarchy::new(metric, low_main - period as i32, high)
            }
        })?;
        let pairing = stats.phase("pairing", || PairingCover::new(metric, &nets, eps));
        let slots = pairing.max_sets();
        let levels = nets.levels().len();

        // Precompute once, for every level l ≥ period and every net point
        // z of level l, the lower-net points of level l - period within
        // 4·2^i of z (used both by the pair rule and the §4.3 rule).
        // The merge radius must reach any tree of the lower forest that
        // holds a point within the covering radius 2·2^i: such a tree has
        // diameter ≤ (1/ε + 24)·2^{i'} (the Lemma 4.3 induction, with our
        // constants), so r = 2·2^i + (1/ε + 24)·2^{i'} suffices; the
        // induction closes for ε ≤ 1/8 and degrades gracefully above.
        let near = stats.phase("near-sets", || {
            let mut near: Vec<HashMap<usize, Vec<usize>>> = vec![HashMap::new(); levels];
            for l in period..levels {
                let r = 2.0 * exp2(nets.levels()[l].scale_exp)
                    + (1.0 / eps + 24.0) * exp2(nets.levels()[l - period].scale_exp);
                let lower = &nets.levels()[l - period].points;
                let map = &mut near[l];
                for &z in &nets.levels()[l].points {
                    let list: Vec<usize> = lower
                        .iter()
                        .copied()
                        .filter(|&w| metric.dist(z, w) <= r)
                        .collect();
                    map.insert(z, list);
                }
            }
            near
        });

        // The σ₃·L trees are independent; build them on the shared
        // worker pipeline (order-preserving, so the cover is identical
        // for every worker count).
        let jobs: Vec<(usize, usize)> = (0..slots.max(1))
            .flat_map(|j| (0..period).map(move |p| (j, p)))
            .collect();
        let build = std::time::Instant::now();
        let trees: Vec<DominatingTree> =
            hopspan_pipeline::parallel_map(workers, &jobs, |_, &(j, p)| {
                Self::build_tree(metric, &nets, &pairing, &near, n, j, p, period)
            });
        stats.record_phase("trees", build.elapsed());
        stats.tree_count = trees.len();
        Ok((
            RobustTreeCover {
                cover: TreeCover::new(trees),
                nets,
                pairing,
                eps,
                period,
                slots: slots.max(1),
            },
            stats,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn build_tree<M: Metric>(
        metric: &M,
        nets: &NetHierarchy,
        pairing: &PairingCover,
        near: &[HashMap<usize, Vec<usize>>],
        n: usize,
        slot: usize,
        residue: usize,
        period: usize,
    ) -> DominatingTree {
        let mut asm = TreeAssembler::new();
        // Leaves in 1-to-1 correspondence with points (Def. 4.1(1)).
        let leaves: Vec<usize> = (0..n).map(|p| asm.add(p)).collect();
        let mut forest = Forest::new(&leaves);
        let levels = nets.levels().len();
        // Helper: merge the current trees of `pts` under a node for `anchor`.
        let merge = |asm: &mut TreeAssembler, forest: &mut Forest, pts: &[usize], anchor: usize| {
            let mut nodes: Vec<usize> = Vec::with_capacity(pts.len());
            for &p in pts {
                let nd = forest.node_of(p);
                if !nodes.contains(&nd) {
                    nodes.push(nd);
                }
            }
            if nodes.len() <= 1 {
                return;
            }
            let v = asm.add(anchor);
            for nd in nodes {
                let w = metric.dist(anchor, asm.point_of[nd]);
                asm.attach(nd, v, w);
            }
            forest.union_under(pts, v);
        };
        for l in period..levels {
            if (l - period) % period != residue % period {
                continue;
            }
            // Pair rule: the slot-th set of 𝒞_i.
            let sets = pairing.level(l);
            if let Some(set) = sets.get(slot) {
                for &(x, y) in &set.pairs {
                    let mut pts: Vec<usize> = vec![x, y];
                    pts.extend(near[l][&x].iter().copied());
                    if x != y {
                        pts.extend(near[l][&y].iter().copied());
                    }
                    merge(&mut asm, &mut forest, &pts, x);
                }
            }
            // §4.3 rule: every net point of N_i absorbs the nearby trees
            // of the lower net, keeping every tree anchored at N_i.
            for &z in &nets.levels()[l].points {
                let mut pts: Vec<usize> = vec![z];
                pts.extend(near[l][&z].iter().copied());
                merge(&mut asm, &mut forest, &pts, z);
            }
        }
        // Final merge of whatever forest remains.
        let mut roots: Vec<usize> = Vec::new();
        let mut root_pts: Vec<usize> = Vec::new();
        for pnt in 0..n {
            let nd = forest.node_of(pnt);
            if !roots.contains(&nd) {
                roots.push(nd);
                root_pts.push(pnt);
            }
        }
        let root = if roots.len() == 1 {
            roots[0]
        } else {
            let anchor = asm.point_of[roots[0]];
            let v = asm.add(anchor);
            for &nd in &roots {
                let w = metric.dist(anchor, asm.point_of[nd]);
                asm.attach(nd, v, w);
            }
            forest.union_under(&root_pts, v);
            v
        };
        asm.finish(root, n)
    }

    /// Consumes the cover wrapper and returns the underlying tree cover.
    pub fn into_cover(self) -> TreeCover {
        self.cover
    }

    /// The underlying (1+O(ε), ζ)-tree cover.
    #[inline]
    pub fn cover(&self) -> &TreeCover {
        &self.cover
    }

    /// The number of trees ζ = σ₃ · L.
    #[inline]
    pub fn tree_count(&self) -> usize {
        self.cover.len()
    }

    /// The construction parameter ε.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The level period `L = ⌈log 1/ε⌉`.
    #[inline]
    pub fn period(&self) -> usize {
        self.period
    }

    /// The slot count σ₃ (trees per residue).
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The net hierarchy the cover was built from.
    #[inline]
    pub fn nets(&self) -> &NetHierarchy {
        &self.nets
    }

    /// The pairing covers the cover was built from.
    #[inline]
    pub fn pairing(&self) -> &PairingCover {
        &self.pairing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopspan_metric::{gen, EuclideanSpace, Metric};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_cover<M: Metric + Sync>(m: &M, eps: f64, stretch_budget: f64) -> RobustTreeCover {
        let rc = RobustTreeCover::new(m, eps).unwrap();
        rc.cover().validate(m).unwrap();
        let s = rc.cover().measured_stretch(m);
        assert!(
            s <= stretch_budget,
            "measured stretch {s} > budget {stretch_budget} (eps={eps})"
        );
        rc
    }

    #[test]
    fn line_small() {
        let m = EuclideanSpace::from_points(&(0..16).map(|i| vec![i as f64]).collect::<Vec<_>>());
        check_cover(&m, 0.5, 1.0 + 1e-9);
    }

    #[test]
    fn line_tighter_eps() {
        let m = EuclideanSpace::from_points(&(0..16).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let loose = RobustTreeCover::new(&m, 1.0).unwrap();
        let tight = RobustTreeCover::new(&m, 0.25).unwrap();
        let sl = loose.cover().measured_stretch(&m);
        let st = tight.cover().measured_stretch(&m);
        assert!(
            st <= sl + 1e-9,
            "smaller eps should not hurt stretch: {st} vs {sl}"
        );
        assert!(st <= 1.0 + 1e-9, "eps=0.25 line stretch {st}");
    }

    #[test]
    fn uniform_2d() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let m = gen::uniform_points(40, 2, &mut rng);
        // The 1+O(ε) constant is large (paper regime is ε ≤ 1/12);
        // measured ≈ 5.4 at ε = 0.5 and ≈ 1.8 at ε = 0.25 on this seed.
        check_cover(&m, 0.5, 8.0);
        check_cover(&m, 0.25, 2.5);
    }

    #[test]
    fn clustered_2d() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let m = gen::clustered_points(30, 2, 3, 0.02, &mut rng);
        check_cover(&m, 0.5, 4.0);
    }

    #[test]
    fn exponential_spread() {
        let m = gen::exponential_line(10);
        check_cover(&m, 0.5, 3.0);
    }

    #[test]
    fn tree_count_independent_of_n() {
        let small =
            EuclideanSpace::from_points(&(0..16).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let big = EuclideanSpace::from_points(&(0..80).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let cs = RobustTreeCover::new(&small, 0.5).unwrap().tree_count();
        let cb = RobustTreeCover::new(&big, 0.5).unwrap().tree_count();
        assert!(cb <= 2 * cs + 8, "ζ grew with n: {cs} -> {cb}");
    }

    #[test]
    fn internal_anchor_is_descendant_leaf() {
        // The robustness precondition: every internal vertex's associated
        // point is one of its descendant leaves.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = gen::uniform_points(24, 2, &mut rng);
        let rc = RobustTreeCover::new(&m, 0.5).unwrap();
        for t in rc.cover().trees() {
            for v in 0..t.tree().len() {
                if t.tree().child_count(v) > 0 {
                    let anchor = t.point_of(v);
                    let ok = t
                        .descendant_leaves(v)
                        .iter()
                        .any(|&leaf| t.point_of(leaf) == anchor);
                    assert!(ok, "anchor of internal vertex {v} not a descendant leaf");
                }
            }
        }
    }

    #[test]
    fn single_point_and_two_points() {
        let one = EuclideanSpace::from_points(&[vec![0.0, 0.0]]);
        let rc = RobustTreeCover::new(&one, 0.5).unwrap();
        assert!(rc.tree_count() >= 1);
        let two = EuclideanSpace::from_points(&[vec![0.0], vec![1.0]]);
        let rc = RobustTreeCover::new(&two, 0.5).unwrap();
        assert!(rc.cover().measured_stretch(&two) >= 1.0);
    }

    #[test]
    fn rejects_bad_eps() {
        let m = EuclideanSpace::from_points(&[vec![0.0], vec![1.0]]);
        assert!(RobustTreeCover::new(&m, 0.0).is_err());
        assert!(RobustTreeCover::new(&m, 1.5).is_err());
    }
}
