//! Pairing covers of nets (paper Definition 4.2, Lemma 4.2, Figure 2).
//!
//! A pairing cover 𝒞_i of a `2^i`-net `N_i` is a small family of subsets
//! such that (1) within each subset every point has at most one other
//! point within `2^i/ε`, and (2) every pair of net points within `2^i/ε`
//! is *paired* by some subset. Step 1a builds a well-separated partition
//! 𝒫_i (pairwise distance `> (3/ε)·2^i` inside each class); Step 1b blows
//! each class into σ₂ pair sets.

use hopspan_metric::Metric;

use crate::nets::{exp2, NetHierarchy};

/// One set of a pairing cover: the explicit list of `(x, y)` pairs it
/// induces (with `x` ranging over one partition class; `y = x` encodes a
/// padded no-op pair).
#[derive(Debug, Clone)]
pub struct PairSet {
    /// The `(x, y)` pairs (point ids).
    pub pairs: Vec<(usize, usize)>,
}

/// The pairing covers of every level of a net hierarchy.
#[derive(Debug, Clone)]
pub struct PairingCover {
    /// `sets[l]` is the pairing cover 𝒞_i for hierarchy level `l`.
    sets: Vec<Vec<PairSet>>,
    eps: f64,
}

impl PairingCover {
    /// Builds pairing covers for every level of `nets` with parameter ε.
    pub fn new<M: Metric>(metric: &M, nets: &NetHierarchy, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "eps in (0, 1]");
        let mut sets = Vec::with_capacity(nets.levels().len());
        for level in nets.levels() {
            let pts = &level.points;
            // Radius (1/ε + 4)·2^i instead of the paper's 2^i/ε: our
            // nested nets cover within 2·2^i, so the net parents p, q of a
            // pair at its equation-(2) level satisfy δ(p,q) ≤ δ + 4·2^i ≤
            // (1/ε + 4)·2^i — the widened radius keeps them paired. The
            // separation stays 3× the radius, which is all that property
            // (1) needs.
            let radius = (1.0 / eps + 4.0) * exp2(level.scale_exp);
            let sep = 3.0 * radius;
            // Step 1a: well-separated partition.
            let mut partition: Vec<Vec<usize>> = Vec::new();
            for &x in pts {
                let slot = partition
                    .iter()
                    .position(|class| class.iter().all(|&y| metric.dist(x, y) > sep));
                match slot {
                    Some(s) => partition[s].push(x),
                    None => partition.push(vec![x]),
                }
            }
            // Step 1b: neighbor sequences and pair sets.
            let neighbors: Vec<Vec<usize>> = pts
                .iter()
                .map(|&x| {
                    let mut nb: Vec<usize> = pts
                        .iter()
                        .copied()
                        .filter(|&y| y != x && metric.dist(x, y) <= radius)
                        .collect();
                    nb.sort_by(|&a, &b| {
                        metric
                            .dist(x, a)
                            .total_cmp(&metric.dist(x, b))
                            .then(a.cmp(&b))
                    });
                    nb
                })
                .collect();
            // hopspan:allow(panic-in-lib) -- idx_of is only called on members of pts (the net itself)
            let idx_of = |x: usize| pts.iter().position(|&p| p == x).expect("net point");
            let sigma2 = neighbors.iter().map(|nb| nb.len()).max().unwrap_or(0);
            let mut level_sets = Vec::new();
            for class in &partition {
                for j in 0..sigma2.max(1) {
                    let pairs: Vec<(usize, usize)> = class
                        .iter()
                        .map(|&x| {
                            let nb = &neighbors[idx_of(x)];
                            (x, nb.get(j).copied().unwrap_or(x))
                        })
                        .collect();
                    // Sets made purely of padded self-pairs carry no
                    // coverage obligation; dropping them shrinks σ₃ (and
                    // hence ζ) without affecting Definition 4.2.
                    if pairs.iter().any(|&(a, b)| a != b) {
                        level_sets.push(PairSet { pairs });
                    }
                }
            }
            sets.push(level_sets);
        }
        PairingCover { sets, eps }
    }

    /// The pairing cover 𝒞 of hierarchy level `l`.
    #[inline]
    pub fn level(&self, l: usize) -> &[PairSet] {
        &self.sets[l]
    }

    /// σ₃ = max over levels of |𝒞_i| — the slot count of the tree cover.
    pub fn max_sets(&self) -> usize {
        self.sets.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// The parameter ε.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Finds a set of level `l` pairing `x` and `y` (in either order).
    pub fn find_pairing(&self, l: usize, x: usize, y: usize) -> Option<usize> {
        self.sets[l].iter().position(|s| {
            s.pairs
                .iter()
                .any(|&(a, b)| (a == x && b == y) || (a == y && b == x))
        })
    }

    /// Verifies Definition 4.2 on level `l` (test helper):
    /// (1) each point has ≤ 1 close partner within each set;
    /// (2) all close net pairs are paired by some set.
    pub fn verify_level<M: Metric>(
        &self,
        metric: &M,
        nets: &NetHierarchy,
        l: usize,
    ) -> Result<(), String> {
        let level = &nets.levels()[l];
        let radius = (1.0 / self.eps + 4.0) * exp2(level.scale_exp);
        for (si, s) in self.sets[l].iter().enumerate() {
            // Collect members (x and y sides).
            let mut members: Vec<usize> = Vec::new();
            for &(a, b) in &s.pairs {
                members.push(a);
                members.push(b);
            }
            members.sort_unstable();
            members.dedup();
            for &x in &members {
                let close = members
                    .iter()
                    .filter(|&&y| y != x && metric.dist(x, y) <= radius)
                    .count();
                if close > 1 {
                    return Err(format!(
                        "level {l} set {si}: point {x} has {close} close partners"
                    ));
                }
            }
        }
        for (ai, &x) in level.points.iter().enumerate() {
            for &y in &level.points[ai + 1..] {
                if metric.dist(x, y) <= radius && self.find_pairing(l, x, y).is_none() {
                    return Err(format!("level {l}: pair ({x},{y}) not paired"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopspan_metric::EuclideanSpace;

    fn line(n: usize) -> EuclideanSpace {
        EuclideanSpace::from_points(&(0..n).map(|i| vec![i as f64]).collect::<Vec<_>>())
    }

    #[test]
    fn pairing_properties_line() {
        // The Figure 2 setting: a line of points, one scale at a time.
        let m = line(12);
        let nets = NetHierarchy::for_epsilon(&m, 0.5, 2).unwrap();
        let pc = PairingCover::new(&m, &nets, 0.5);
        for l in 0..nets.levels().len() {
            pc.verify_level(&m, &nets, l).unwrap();
        }
    }

    #[test]
    fn pairing_properties_2d() {
        let pts: Vec<Vec<f64>> = (0..5)
            .flat_map(|x| (0..5).map(move |y| vec![x as f64, y as f64 * 1.3]))
            .collect();
        let m = EuclideanSpace::from_points(&pts);
        let nets = NetHierarchy::for_epsilon(&m, 0.4, 2).unwrap();
        let pc = PairingCover::new(&m, &nets, 0.4);
        for l in 0..nets.levels().len() {
            pc.verify_level(&m, &nets, l).unwrap();
        }
    }

    #[test]
    fn set_count_independent_of_n() {
        // ζ-shape: |𝒞_i| depends on ε and the dimension, not on n.
        let small = line(16);
        let big = line(64);
        let eps = 0.5;
        let n1 = NetHierarchy::for_epsilon(&small, eps, 2).unwrap();
        let n2 = NetHierarchy::for_epsilon(&big, eps, 2).unwrap();
        let c1 = PairingCover::new(&small, &n1, eps).max_sets();
        let c2 = PairingCover::new(&big, &n2, eps).max_sets();
        // Allow slack but forbid linear growth.
        assert!(c2 <= 2 * c1 + 8, "pairing sets grew with n: {c1} -> {c2}");
    }

    #[test]
    fn self_pairs_are_padding() {
        let m = line(4);
        let nets = NetHierarchy::for_epsilon(&m, 1.0, 1).unwrap();
        let pc = PairingCover::new(&m, &nets, 1.0);
        // Every pair list is non-empty and uses x = y only as padding.
        for l in 0..nets.levels().len() {
            for s in pc.level(l) {
                assert!(!s.pairs.is_empty());
            }
        }
    }
}
