//! Tree cover theorems for metric spaces (paper §2.1, §4).
//!
//! A *(γ, ζ)-tree cover* of a metric `M_X = (X, δ_X)` is a collection of ζ
//! dominating trees such that every pair of points has a tree whose path
//! between them weighs at most `γ · δ_X(x, y)`. Tree covers are the bridge
//! from the tree navigation scheme (Theorem 1.1) to arbitrary metric
//! classes (Theorem 1.2): navigate by first picking the right tree, then
//! running the O(k) tree query.
//!
//! This crate implements, from scratch:
//!
//! * [`NetHierarchy`] — hierarchical `2^i`-nets (§4.2 prerequisites);
//! * [`PairingCover`] — the paper's new *pairing covers* of nets
//!   (Definition 4.2, Lemma 4.2);
//! * [`RobustTreeCover`] — the **Robust Tree Cover Theorem** (Theorem 4.1)
//!   for doubling metrics: a `(1+ε, ε^{-O(d)})`-tree cover in which any
//!   internal vertex may be replaced by *any* descendant leaf without
//!   hurting the stretch — the engine behind fault tolerance (§4);
//! * [`RamseyTreeCover`] — a Ramsey `(O(ℓ), Õ(ℓ·n^{1/ℓ}))`-tree cover for
//!   general metrics via hierarchical random partitions (the \[MN06\] row
//!   of Table 1; see DESIGN.md §4 for the substitution note);
//! * [`SeparatorTreeCover`] — a shortest-path-separator cover for planar
//!   graph metrics (the \[BFN19\] row of Table 1, simplified; stretch ≤ 3
//!   guaranteed per crossing, `1+ε` with portals empirically).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod doubling;
mod nets;
mod pairing;
mod planar;
mod ramsey;

pub use cover::{substituted_path_weight, CoverError, DominatingTree, TreeCover};
pub use doubling::RobustTreeCover;
pub use nets::{NetHierarchy, NetLevel};
pub use pairing::{PairSet, PairingCover};
pub use planar::SeparatorTreeCover;
pub use ramsey::RamseyTreeCover;
