//! Ramsey tree covers for general metrics (the \[MN06\] row of Table 1).
//!
//! A *Ramsey* tree cover assigns every point a **home tree** in which its
//! stretch to *every* other point is at most γ — this is what gives the
//! O(1) tree-selection step of Theorem 1.2 and the constant-decision-time
//! routing of Theorem 1.3 in general metrics.
//!
//! Construction (randomized; see DESIGN.md §4 for the substitution note):
//! repeat building hierarchical random ball-carving partitions (CKR-style)
//! of the whole point set into an HST; the points that are *padded* at
//! every scale have stretch `O(ℓ)` to everyone in that HST and adopt it as
//! their home tree; strip them and repeat. With padding parameter
//! `Δ_t/(8ℓ)`, an expected `≈ n^{-1/ℓ}` fraction is padded per round,
//! giving `ζ = Õ(ℓ·n^{1/ℓ})` trees. A star-tree fallback guarantees
//! termination.

use hopspan_metric::Metric;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::cover::TreeAssembler;
use crate::{CoverError, DominatingTree, TreeCover};

/// A Ramsey `(O(ℓ), Õ(ℓ·n^{1/ℓ}))`-tree cover with per-point home trees.
///
/// # Examples
///
/// ```
/// use hopspan_metric::gen;
/// use hopspan_tree_cover::RamseyTreeCover;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let m = gen::random_bounded_metric(12, &mut rng);
/// let cover = RamseyTreeCover::new(&m, 2, &mut rng)?;
/// // Every point has a home tree covering all its pairs.
/// assert!(cover.home(5) < cover.tree_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RamseyTreeCover {
    cover: TreeCover,
    home: Vec<usize>,
    ell: usize,
}

impl RamseyTreeCover {
    /// Builds the cover with trade-off parameter `ell ≥ 1` using `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::Empty`] for an empty metric or
    /// [`CoverError::InvalidParameter`] for `ell = 0`; duplicate points
    /// are rejected like in the other covers.
    pub fn new<M: Metric, R: Rng>(metric: &M, ell: usize, rng: &mut R) -> Result<Self, CoverError> {
        let n = metric.len();
        if n == 0 {
            return Err(CoverError::Empty);
        }
        if ell == 0 {
            return Err(CoverError::InvalidParameter {
                what: "ell must be >= 1",
            });
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if metric.dist(i, j) <= 0.0 {
                    return Err(CoverError::DuplicatePoints { i, j });
                }
            }
        }
        let mut home = vec![usize::MAX; n];
        let mut trees = Vec::new();
        let mut unassigned: Vec<usize> = (0..n).collect();
        if n == 1 {
            let mut asm = TreeAssembler::new();
            let leaf = asm.add(0);
            let t = asm.finish(leaf, 1);
            return Ok(RamseyTreeCover {
                cover: TreeCover::new(vec![t]),
                home: vec![0],
                ell,
            });
        }
        while !unassigned.is_empty() {
            let (tree, padded) = build_hst(metric, ell as f64, rng, &unassigned);
            if padded.is_empty() {
                // Fallback: a star tree homes one point with stretch 1.
                let center = unassigned[0];
                let mut asm = TreeAssembler::new();
                let root = asm.add(center);
                for p in 0..n {
                    let leaf = asm.add(p);
                    asm.attach(leaf, root, metric.dist(center, p).max(f64::MIN_POSITIVE));
                }
                // The center also needs a leaf: it got one in the loop
                // above with weight ~0 (distance to itself clamped to a
                // tiny positive weight keeps domination trivially true).
                let t = asm.finish(root, n);
                home[center] = trees.len();
                trees.push(t);
                unassigned.retain(|&p| p != center);
                continue;
            }
            let idx = trees.len();
            for &p in &padded {
                home[p] = idx;
            }
            trees.push(tree);
            unassigned.retain(|&p| home[p] == usize::MAX);
        }
        Ok(RamseyTreeCover {
            cover: TreeCover::new(trees),
            home,
            ell,
        })
    }

    /// Consumes the cover wrapper and returns the underlying tree cover.
    pub fn into_cover(self) -> TreeCover {
        self.cover
    }

    /// Builds a Ramsey cover with **at most** `budget ≥ 1` trees — the
    /// second general-metric trade-off of Table 1
    /// (γ = O(n^{1/ℓ}·log^{1-1/ℓ}n) with ζ = ℓ trees): each round doubles
    /// its padding parameter until enough points adopt the round's HST as
    /// their home tree, and the last round pads everyone.
    ///
    /// Returns the cover together with the largest padding parameter γ
    /// used (the realized stretch is ≤ 32γ, reported for experiments).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RamseyTreeCover::new`].
    pub fn with_tree_budget<M: Metric, R: Rng>(
        metric: &M,
        budget: usize,
        rng: &mut R,
    ) -> Result<(Self, f64), CoverError> {
        let n = metric.len();
        if n == 0 {
            return Err(CoverError::Empty);
        }
        if budget == 0 {
            return Err(CoverError::InvalidParameter {
                what: "budget must be >= 1",
            });
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if metric.dist(i, j) <= 0.0 {
                    return Err(CoverError::DuplicatePoints { i, j });
                }
            }
        }
        if n == 1 {
            let mut asm = TreeAssembler::new();
            let leaf = asm.add(0);
            let t = asm.finish(leaf, 1);
            return Ok((
                RamseyTreeCover {
                    cover: TreeCover::new(vec![t]),
                    home: vec![0],
                    ell: budget,
                },
                1.0,
            ));
        }
        let mut home = vec![usize::MAX; n];
        let mut trees = Vec::new();
        let mut unassigned: Vec<usize> = (0..n).collect();
        let mut gamma_max = 1.0f64;
        for round in 0..budget {
            if unassigned.is_empty() {
                break;
            }
            let remaining_rounds = budget - round;
            let u = unassigned.len();
            // Home at least u - u^{(r-1)/r} points this round (everyone in
            // the last round), doubling γ until the padding succeeds.
            let keep_next = if remaining_rounds == 1 {
                0usize
            } else {
                (u as f64)
                    .powf((remaining_rounds - 1) as f64 / remaining_rounds as f64)
                    .floor() as usize
            };
            let needed = u - keep_next.min(u.saturating_sub(1));
            let mut gamma = 1.0f64;
            let (tree, padded) = loop {
                let (tree, padded) = build_hst(metric, gamma, rng, &unassigned);
                if padded.len() >= needed || gamma > 64.0 * n as f64 {
                    break (tree, padded);
                }
                gamma *= 2.0;
            };
            gamma_max = gamma_max.max(gamma);
            let idx = trees.len();
            for &p in &padded {
                home[p] = idx;
            }
            trees.push(tree);
            unassigned.retain(|&p| home[p] == usize::MAX);
        }
        debug_assert!(
            unassigned.is_empty(),
            "a large enough padding parameter pads every point"
        );
        Ok((
            RamseyTreeCover {
                cover: TreeCover::new(trees),
                home,
                ell: budget,
            },
            gamma_max,
        ))
    }

    /// The underlying tree cover.
    #[inline]
    pub fn cover(&self) -> &TreeCover {
        &self.cover
    }

    /// The home tree of point `p` — stretch to every other point is
    /// `O(ℓ)` in this tree.
    #[inline]
    pub fn home(&self, p: usize) -> usize {
        self.home[p]
    }

    /// The trade-off parameter ℓ.
    #[inline]
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// Number of trees ζ.
    #[inline]
    pub fn tree_count(&self) -> usize {
        self.cover.len()
    }

    /// Worst stretch realized from each point's home tree (test helper):
    /// `max_{x,y} δ_{T_home(x)}(x, y) / δ_X(x, y)`.
    pub fn measured_home_stretch<M: Metric>(&self, metric: &M) -> f64 {
        let n = metric.len();
        let mut worst: f64 = 1.0;
        for x in 0..n {
            let t = &self.cover.trees()[self.home[x]];
            for y in 0..n {
                if x == y {
                    continue;
                }
                let d = metric.dist(x, y);
                // hopspan:allow(panic-in-lib) -- Ramsey trees are spanning: every tree covers all points
                let td = t.distance(x, y).expect("trees span all points");
                worst = worst.max(td / d);
            }
        }
        worst
    }
}

/// Builds one HST over **all** points via top-down random ball carving,
/// and returns it with the list of `candidates` that were padded at every
/// scale.
fn build_hst<M: Metric, R: Rng>(
    metric: &M,
    gamma: f64,
    rng: &mut R,
    candidates: &[usize],
) -> (DominatingTree, Vec<usize>) {
    let n = metric.len();
    let mut dmax: f64 = 0.0;
    let mut dmin = f64::INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = metric.dist(i, j);
            dmax = dmax.max(d);
            dmin = dmin.min(d);
        }
    }
    let mut asm = TreeAssembler::new();
    let leaves: Vec<usize> = (0..n).map(|p| asm.add(p)).collect();
    let mut padded: Vec<bool> = vec![false; n];
    let mut is_candidate = vec![false; n];
    for &c in candidates {
        is_candidate[c] = true;
        padded[c] = true;
    }
    // Top cluster: all points; height Δ₀ = dmax.
    struct Cluster {
        node: usize,
        pts: Vec<usize>,
        height: f64,
    }
    let root_node = asm.add(0);
    let mut clusters = vec![Cluster {
        node: root_node,
        pts: (0..n).collect(),
        height: dmax,
    }];
    let mut delta = dmax;
    while delta > dmin / 2.0 && clusters.iter().any(|c| c.pts.len() > 1) {
        delta /= 2.0;
        // One global permutation and radius per scale (CKR).
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        let mut rank = vec![0usize; n];
        for (r, &p) in perm.iter().enumerate() {
            rank[p] = r;
        }
        let radius = delta * (0.25 + 0.25 * rng.gen::<f64>());
        let mut next_clusters = Vec::new();
        for cl in clusters {
            if cl.pts.len() == 1 {
                // Attach the leaf directly under the cluster node.
                let p = cl.pts[0];
                asm.attach(leaves[p], cl.node, cl.height);
                continue;
            }
            // Assign each point to the first permuted center within radius.
            let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
            for &x in &cl.pts {
                let mut best_center = x;
                let mut best_rank = rank[x];
                for &c in &cl.pts {
                    if rank[c] < best_rank && metric.dist(x, c) <= radius {
                        best_center = c;
                        best_rank = rank[c];
                    }
                }
                match groups.iter_mut().find(|(c, _)| *c == best_center) {
                    Some((_, g)) => g.push(x),
                    None => groups.push((best_center, vec![x])),
                }
            }
            // Padding check for candidate points: the ball of radius
            // Δ/(8ℓ) must stay within the point's own group.
            let pad_r = delta / (8.0 * gamma);
            for (c, g) in &groups {
                let _ = c;
                for &x in g {
                    if is_candidate[x] && padded[x] {
                        let ok = (0..n).all(|y| metric.dist(x, y) > pad_r || g.contains(&y));
                        if !ok {
                            padded[x] = false;
                        }
                    }
                }
            }
            for (c, g) in groups {
                let node = asm.add(c);
                asm.attach(node, cl.node, cl.height - delta);
                next_clusters.push(Cluster {
                    node,
                    pts: g,
                    height: delta,
                });
            }
        }
        clusters = next_clusters;
    }
    // Attach remaining singleton clusters' leaves.
    for cl in clusters {
        for &p in &cl.pts {
            if asm.parent[leaves[p]].is_none() && leaves[p] != root_node {
                asm.attach(leaves[p], cl.node, cl.height);
            }
        }
    }
    // Root anchor: associate the root with some point.
    let tree = asm.finish(root_node, n);
    let out: Vec<usize> = candidates.iter().copied().filter(|&p| padded[p]).collect();
    (tree, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopspan_metric::gen;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(20260706)
    }

    #[test]
    fn homes_cover_everyone() {
        let m = gen::random_bounded_metric(24, &mut rng());
        let rc = RamseyTreeCover::new(&m, 2, &mut rng()).unwrap();
        for p in 0..24 {
            assert!(rc.home(p) < rc.tree_count());
        }
        rc.cover().validate(&m).unwrap();
    }

    #[test]
    fn home_stretch_bounded() {
        let m = gen::random_bounded_metric(20, &mut rng());
        for ell in [1usize, 2, 3] {
            let rc = RamseyTreeCover::new(&m, ell, &mut rng()).unwrap();
            let s = rc.measured_home_stretch(&m);
            // Guarantee is O(ℓ) with constant ~16; measured is far below
            // on bounded random metrics.
            assert!(
                s <= 32.0 * ell as f64,
                "home stretch {s} too large for ell={ell}"
            );
        }
    }

    #[test]
    fn graph_metric_input() {
        let m = gen::random_graph_metric(18, 12, &mut rng());
        let rc = RamseyTreeCover::new(&m, 2, &mut rng()).unwrap();
        rc.cover().validate(&m).unwrap();
        assert!(rc.measured_home_stretch(&m).is_finite());
    }

    #[test]
    fn larger_ell_fewer_trees() {
        // A line metric has genuine distance spread, so padding is hard
        // for small ℓ (bounded random metrics have aspect ratio 2 and
        // everything is padded in one round).
        let m = hopspan_metric::EuclideanSpace::from_points(
            &(0..48).map(|i| vec![i as f64]).collect::<Vec<_>>(),
        );
        let t1 = RamseyTreeCover::new(&m, 1, &mut rng())
            .unwrap()
            .tree_count();
        let t3 = RamseyTreeCover::new(&m, 3, &mut rng())
            .unwrap()
            .tree_count();
        // ζ = Õ(ℓ·n^{1/ℓ}): ℓ = 1 needs many trees, ℓ = 3 far fewer.
        assert!(t1 > 1, "ell=1 should need several trees, got {t1}");
        assert!(
            t3 <= t1,
            "expected fewer trees for larger ell: {t3} vs {t1}"
        );
    }

    #[test]
    fn singletons_and_pairs() {
        let m = hopspan_metric::EuclideanSpace::from_points(&[vec![0.0]]);
        let rc = RamseyTreeCover::new(&m, 2, &mut rng()).unwrap();
        assert_eq!(rc.tree_count(), 1);
        let m2 = hopspan_metric::EuclideanSpace::from_points(&[vec![0.0], vec![2.0]]);
        let rc2 = RamseyTreeCover::new(&m2, 2, &mut rng()).unwrap();
        assert!(rc2.measured_home_stretch(&m2) < 16.0);
    }

    #[test]
    fn tree_budget_respected() {
        let m = hopspan_metric::EuclideanSpace::from_points(
            &(0..48).map(|i| vec![i as f64]).collect::<Vec<_>>(),
        );
        for budget in [1usize, 2, 4] {
            let (rc, gamma) = RamseyTreeCover::with_tree_budget(&m, budget, &mut rng()).unwrap();
            assert!(
                rc.tree_count() <= budget,
                "ζ {} > budget {budget}",
                rc.tree_count()
            );
            assert!(gamma >= 1.0);
            // Everyone is homed and the measured stretch respects 32γ.
            let s = rc.measured_home_stretch(&m);
            assert!(
                s <= 32.0 * gamma + 1e-9,
                "stretch {s} vs 32γ = {}",
                32.0 * gamma
            );
            rc.cover().validate(&m).unwrap();
        }
    }

    #[test]
    fn tree_budget_tradeoff_direction() {
        // Fewer trees ⇒ the construction must accept a larger γ.
        let m = hopspan_metric::EuclideanSpace::from_points(
            &(0..64).map(|i| vec![i as f64]).collect::<Vec<_>>(),
        );
        let (_, g1) = RamseyTreeCover::with_tree_budget(&m, 1, &mut rng()).unwrap();
        let (_, g4) = RamseyTreeCover::with_tree_budget(&m, 4, &mut rng()).unwrap();
        assert!(
            g4 <= g1,
            "more trees should not need a larger γ: {g4} vs {g1}"
        );
    }

    #[test]
    fn tree_budget_singleton() {
        let m = hopspan_metric::EuclideanSpace::from_points(&[vec![0.0]]);
        let (rc, _) = RamseyTreeCover::with_tree_budget(&m, 3, &mut rng()).unwrap();
        assert_eq!(rc.tree_count(), 1);
    }

    #[test]
    fn rejects_bad_input() {
        let m = hopspan_metric::EuclideanSpace::from_points(&[vec![0.0], vec![0.0]]);
        assert!(matches!(
            RamseyTreeCover::new(&m, 2, &mut rng()),
            Err(CoverError::DuplicatePoints { .. })
        ));
        let m2 = hopspan_metric::EuclideanSpace::from_points(&[vec![0.0], vec![1.0]]);
        assert!(RamseyTreeCover::new(&m2, 0, &mut rng()).is_err());
        assert!(RamseyTreeCover::with_tree_budget(&m2, 0, &mut rng()).is_err());
    }
}
