//! Hierarchical `2^i`-nets (paper §4.2, Step 0).
//!
//! An `r`-net of `(X, δ_X)` is `N ⊆ X` with (a) pairwise distances `> r`
//! (packing) and (b) every point within `r` of some net point (covering).
//! The hierarchy fixes nested nets `N_i ⊇ N_{i+1}` where `N_i` is a
//! `2^i`-net, for all scales `i` in a range wide enough for both the
//! pairing covers and the pair-level equation (2) of the paper.

use hopspan_metric::{exactly_zero, Metric};

use crate::CoverError;

/// One level of the hierarchy.
#[derive(Debug, Clone)]
pub struct NetLevel {
    /// The net radius is `2^scale_exp`.
    pub scale_exp: i32,
    /// Net points (subset of `0..n`), in greedy selection order.
    pub points: Vec<usize>,
}

/// A hierarchy of nested `2^i`-nets.
#[derive(Debug, Clone)]
pub struct NetHierarchy {
    levels: Vec<NetLevel>,
    /// For each level and each point of X, the index (into
    /// `levels[l].points`) of a net point within `2^i` (its "net parent").
    nearest_net: Vec<Vec<usize>>,
    n: usize,
}

impl NetHierarchy {
    /// Builds nested nets for every scale in `[low_exp, high_exp]`
    /// (inclusive). Levels are greedy: each is a maximal independent
    /// subset of the previous level at the new radius, which yields both
    /// the packing and covering properties.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::Empty`] for an empty metric,
    /// [`CoverError::DuplicatePoints`] if two points coincide,
    /// [`CoverError::BadDistance`] for a NaN, infinite or negative
    /// distance, and [`CoverError::InvalidParameter`] for a reversed
    /// range.
    pub fn new<M: Metric>(metric: &M, low_exp: i32, high_exp: i32) -> Result<Self, CoverError> {
        let n = metric.len();
        if n == 0 {
            return Err(CoverError::Empty);
        }
        if low_exp > high_exp {
            return Err(CoverError::InvalidParameter {
                what: "low_exp > high_exp",
            });
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.dist(i, j);
                // NaN fails `is_finite`; a plain `<= 0.0` would let it
                // through and poison every radius comparison below.
                if !d.is_finite() || d < 0.0 {
                    return Err(CoverError::BadDistance { i, j, value: d });
                }
                if exactly_zero(d) {
                    return Err(CoverError::DuplicatePoints { i, j });
                }
            }
        }
        let mut levels: Vec<NetLevel> = Vec::new();
        let mut nearest_net: Vec<Vec<usize>> = Vec::new();
        let mut prev: Vec<usize> = (0..n).collect();
        for e in low_exp..=high_exp {
            let r = exp2(e);
            // Greedy subset of the previous net with pairwise distance > r.
            let mut keep: Vec<usize> = Vec::new();
            for &p in &prev {
                if keep.iter().all(|&q| metric.dist(p, q) > r) {
                    keep.push(p);
                }
            }
            // Net parent per point of X: the closest net point. Nested
            // greedy nets cover X within radius 2^e·(1 + 1/2 + …) < 2^{e+1}
            // (follow the chain of killers downward); the constructions
            // built on this hierarchy use the covering radius 2·2^e, which
            // the paper's O(·) constants absorb.
            let mut near = Vec::with_capacity(n);
            for x in 0..n {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (idx, &q) in keep.iter().enumerate() {
                    let d = metric.dist(x, q);
                    if d < best_d {
                        best_d = d;
                        best = idx;
                    }
                }
                near.push(best);
            }
            nearest_net.push(near);
            levels.push(NetLevel {
                scale_exp: e,
                points: keep.clone(),
            });
            prev = keep;
        }
        Ok(NetHierarchy {
            levels,
            nearest_net,
            n,
        })
    }

    /// Convenience: builds the range of scales needed for an ε-pairing
    /// cover of the whole metric: from `⌊log₂(4ε·δ_min)⌋ - extra_low` up
    /// to `⌈log₂(2ε·δ_max)⌉ + 1`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`NetHierarchy::new`].
    pub fn for_epsilon<M: Metric>(
        metric: &M,
        eps: f64,
        extra_low: i32,
    ) -> Result<Self, CoverError> {
        if eps <= 0.0 || eps.is_nan() || eps > 1.0 {
            return Err(CoverError::InvalidParameter {
                what: "eps must be in (0, 1]",
            });
        }
        let n = metric.len();
        if n == 0 {
            return Err(CoverError::Empty);
        }
        let mut dmin = f64::INFINITY;
        let mut dmax: f64 = 0.0;
        let mut closest = (0usize, 0usize);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.dist(i, j);
                // Reject NaN/∞/negative entries up front: an infinite
                // dmax would overflow the i32 exponent arithmetic below,
                // and NaN slips past every ordered comparison.
                if !d.is_finite() || d < 0.0 {
                    return Err(CoverError::BadDistance { i, j, value: d });
                }
                if d < dmin {
                    dmin = d;
                    closest = (i, j);
                }
                dmax = dmax.max(d);
            }
        }
        if dmin <= 0.0 {
            // log₂(0) below would underflow the scale range; report the
            // zero-distance pair instead.
            return Err(CoverError::DuplicatePoints {
                i: closest.0,
                j: closest.1,
            });
        }
        if n == 1 {
            // Single point: one trivial level.
            return NetHierarchy::new(metric, 0, 0);
        }
        let low = (4.0 * eps * dmin).log2().floor() as i32 - extra_low;
        let high = (2.0 * eps * dmax).log2().ceil() as i32 + 1;
        NetHierarchy::new(metric, low.min(high), high)
    }

    /// Number of points in the underlying metric.
    #[inline]
    pub fn point_count(&self) -> usize {
        self.n
    }

    /// The levels, ascending by scale.
    #[inline]
    pub fn levels(&self) -> &[NetLevel] {
        &self.levels
    }

    /// Index of the level with scale exponent `e`, if present.
    pub fn level_index(&self, e: i32) -> Option<usize> {
        let first = self.levels.first()?.scale_exp;
        let off = e.checked_sub(first)?;
        if off < 0 || off as usize >= self.levels.len() {
            None
        } else {
            Some(off as usize)
        }
    }

    /// The closest net point of level `l` to point `x` (a "net parent").
    pub fn nearest_net_point(&self, l: usize, x: usize) -> usize {
        self.levels[l].points[self.nearest_net[l][x]]
    }
}

/// `2^e` for possibly negative `e`.
pub(crate) fn exp2(e: i32) -> f64 {
    (e as f64).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopspan_metric::EuclideanSpace;

    fn line(n: usize) -> EuclideanSpace {
        EuclideanSpace::from_points(&(0..n).map(|i| vec![i as f64]).collect::<Vec<_>>())
    }

    #[test]
    fn packing_and_covering() {
        let m = line(32);
        let h = NetHierarchy::new(&m, -1, 6).unwrap();
        for (l, lvl) in h.levels().iter().enumerate() {
            let r = exp2(lvl.scale_exp);
            // Packing: pairwise > r.
            for (a, &p) in lvl.points.iter().enumerate() {
                for &q in &lvl.points[a + 1..] {
                    assert!(m.dist(p, q) > r, "packing violated at level {l}");
                }
            }
            // Covering: nested greedy nets cover within radius
            // 2^i·(1 + 1/2 + 1/4 + …) < 2^{i+1} (the killer chain).
            for x in 0..m.len() {
                let p = h.nearest_net_point(l, x);
                assert!(
                    m.dist(x, p) <= 2.0 * r + 1e-9,
                    "covering violated: level {l}, x={x}, dist={}",
                    m.dist(x, p)
                );
            }
        }
    }

    #[test]
    fn nesting() {
        let m = line(20);
        let h = NetHierarchy::new(&m, 0, 5).unwrap();
        for w in h.levels().windows(2) {
            for p in &w[1].points {
                assert!(w[0].points.contains(p), "nets must be nested");
            }
        }
        // Top level has a single point for scale >= diameter.
        assert_eq!(h.levels().last().unwrap().points.len(), 1);
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        let dup = EuclideanSpace::from_points(&[vec![1.0], vec![1.0]]);
        assert!(matches!(
            NetHierarchy::new(&dup, 0, 1),
            Err(CoverError::DuplicatePoints { .. })
        ));
    }

    #[test]
    fn for_epsilon_covers_needed_scales() {
        let m = line(16);
        let h = NetHierarchy::for_epsilon(&m, 0.5, 3).unwrap();
        // Lowest level must be a net where every point is its own net
        // point (scale below min distance).
        assert_eq!(h.levels()[0].points.len(), 16);
        assert!(h.level_index(h.levels()[0].scale_exp).unwrap() == 0);
        assert!(h.level_index(999).is_none());
    }

    #[test]
    fn single_point() {
        let m = line(1);
        let h = NetHierarchy::for_epsilon(&m, 0.5, 2).unwrap();
        assert_eq!(h.levels().len(), 1);
        assert_eq!(h.levels()[0].points, vec![0]);
    }

    #[test]
    fn rejects_non_finite_and_negative_distances() {
        struct Bad(f64);
        impl hopspan_metric::Metric for Bad {
            fn len(&self) -> usize {
                3
            }
            fn dist(&self, i: usize, j: usize) -> f64 {
                if i == j {
                    0.0
                } else if i.min(j) == 0 && i.max(j) == 2 {
                    self.0
                } else {
                    1.0
                }
            }
        }
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            // `for_epsilon` must reject before its exponent arithmetic
            // (an ∞ diameter would overflow the i32 scale range).
            assert!(matches!(
                NetHierarchy::for_epsilon(&Bad(bad), 0.5, 2),
                Err(CoverError::BadDistance { i: 0, j: 2, .. })
            ));
            assert!(matches!(
                NetHierarchy::new(&Bad(bad), 0, 1),
                Err(CoverError::BadDistance { i: 0, j: 2, .. })
            ));
        }
    }
}
