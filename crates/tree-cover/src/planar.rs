//! Tree covers for planar graph metrics via shortest-path separators
//! (the \[BFN19\] fixed-minor-free row of Table 1, simplified — see
//! DESIGN.md §4).
//!
//! The graph is recursively split by a separator made of two shortest
//! paths through an SPT root. For each separator path `P` the cover gets:
//!
//! * a **spine tree**: `P` itself plus a shortest-path forest attaching
//!   every region vertex to `P` (stretch ≤ 3 for every pair whose
//!   shortest path crosses `P`, because distances along a shortest path
//!   are exact);
//! * optional **portal trees**: SPTs rooted at geometrically spaced
//!   portals of `P`, which bring the realized stretch close to `1 + ε` on
//!   grid-like inputs.
//!
//! Trees of the *same recursion level and role* over disjoint regions are
//! unioned into a single dominating tree (linked by edges of weight equal
//! to the total graph weight, which preserves domination), so the number
//! of trees is `O(depth · (1/ε) · log ρ)` rather than `O(n)`. Every pair
//! of vertices is separated at some level (covered by that level's spine
//! trees) or ends together in a tiny leaf region (covered by the unioned
//! leaf star trees).

use std::collections::{BTreeMap, HashMap};

use hopspan_metric::Graph;

use crate::cover::TreeAssembler;
use crate::{CoverError, DominatingTree, TreeCover};

/// A separator-based tree cover for a connected (planar) graph metric.
///
/// # Examples
///
/// ```
/// use hopspan_metric::gen;
/// use hopspan_tree_cover::SeparatorTreeCover;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = gen::grid_graph(4, 4);
/// let cover = SeparatorTreeCover::new(&grid, 0.5)?;
/// assert!(cover.tree_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SeparatorTreeCover {
    cover: TreeCover,
    eps: f64,
    depth: usize,
}

/// An unfinished per-region tree: parents/weights/points with local ids.
struct RegionTree {
    parent: Vec<Option<usize>>,
    weight: Vec<f64>,
    point_of: Vec<usize>,
    root: usize,
}

/// Bucket key: trees with the same key are unioned into one cover tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Role {
    /// Spine tree of separator path `p` (0 or 1) at a recursion level.
    Spine(usize),
    /// Portal SPT `m` of separator path `p` at a recursion level.
    Portal(usize, usize),
    /// Star tree around the `i`-th vertex of a leaf region.
    Star(usize),
}

impl SeparatorTreeCover {
    /// Builds the cover for the metric of `graph` with portal parameter
    /// `eps ∈ (0, 1]` (smaller ε ⇒ more portals ⇒ better stretch).
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::Empty`] for an empty graph and
    /// [`CoverError::InvalidParameter`] if `eps` is out of range or the
    /// graph is disconnected.
    pub fn new(graph: &Graph, eps: f64) -> Result<Self, CoverError> {
        if graph.is_empty() {
            return Err(CoverError::Empty);
        }
        if eps <= 0.0 || eps.is_nan() || eps > 1.0 {
            return Err(CoverError::InvalidParameter {
                what: "eps must be in (0, 1]",
            });
        }
        if !graph.is_connected() {
            return Err(CoverError::InvalidParameter {
                what: "graph must be connected",
            });
        }
        let n = graph.len();
        let big = graph.total_weight().max(1.0);
        let mut buckets: BTreeMap<(usize, Role), Vec<RegionTree>> = BTreeMap::new();
        let mut regions: Vec<(usize, Vec<usize>)> = vec![(0, (0..n).collect())];
        let mut max_depth = 0usize;
        while let Some((level, region)) = regions.pop() {
            max_depth = max_depth.max(level);
            if region.len() <= 3 {
                for (i, &c) in region.iter().enumerate() {
                    buckets
                        .entry((level, Role::Star(i)))
                        .or_default()
                        .push(star_tree(graph, &region, c));
                }
                continue;
            }
            let (paths, components) = separate(graph, &region);
            for (pi, path) in paths.iter().enumerate() {
                buckets
                    .entry((level, Role::Spine(pi)))
                    .or_default()
                    .push(spine_tree(graph, &region, path));
                for (mi, &portal) in geometric_portals(graph, path, eps).iter().enumerate() {
                    buckets
                        .entry((level, Role::Portal(pi, mi)))
                        .or_default()
                        .push(spt_tree(graph, &region, portal));
                }
            }
            for comp in components {
                regions.push((level + 1, comp));
            }
        }
        // BTreeMap iteration is already sorted by (level, role), so the
        // tree order of the cover is deterministic by construction.
        let trees: Vec<DominatingTree> = buckets
            .into_values()
            .map(|group| union_trees(group, big, n))
            .collect();
        Ok(SeparatorTreeCover {
            cover: TreeCover::new(trees),
            eps,
            depth: max_depth + 1,
        })
    }

    /// Consumes the cover wrapper and returns the underlying tree cover.
    pub fn into_cover(self) -> TreeCover {
        self.cover
    }

    /// The underlying tree cover (trees cover subsets; every vertex pair
    /// is covered by at least one common tree).
    #[inline]
    pub fn cover(&self) -> &TreeCover {
        &self.cover
    }

    /// The portal parameter ε.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of trees ζ.
    #[inline]
    pub fn tree_count(&self) -> usize {
        self.cover.len()
    }

    /// Depth of the separator recursion.
    #[inline]
    pub fn recursion_depth(&self) -> usize {
        self.depth
    }
}

/// Unions disjoint-region trees into one dominating tree by linking all
/// region roots under a fresh root with huge edge weights (≥ any metric
/// distance, so domination is preserved for cross-region pairs).
fn union_trees(parts: Vec<RegionTree>, big: f64, n_points: usize) -> DominatingTree {
    let mut asm = TreeAssembler::new();
    let mut roots = Vec::with_capacity(parts.len());
    for part in &parts {
        let offset = asm.parent.len();
        for i in 0..part.parent.len() {
            asm.add(part.point_of[i]);
            debug_assert_eq!(asm.parent.len() - 1, offset + i);
        }
        for i in 0..part.parent.len() {
            if let Some(p) = part.parent[i] {
                asm.attach(offset + i, offset + p, part.weight[i]);
            }
        }
        roots.push(offset + part.root);
    }
    let root = if roots.len() == 1 {
        roots[0]
    } else {
        let anchor = asm.point_of[roots[0]];
        let r = asm.add(anchor);
        for &nd in &roots {
            asm.attach(nd, r, big);
        }
        r
    };
    asm.finish(root, n_points)
}

/// Dijkstra restricted to `region`; returns `(dist, parent)` indexed by
/// global vertex ids (∞ / None outside the region).
fn region_dijkstra(
    graph: &Graph,
    in_region: &[bool],
    sources: &[(usize, f64)],
) -> (Vec<f64>, Vec<Option<usize>>) {
    let n = graph.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut heap = std::collections::BinaryHeap::new();
    for &(s, d0) in sources {
        if d0 < dist[s] {
            dist[s] = d0;
            heap.push(MinEntry(d0, s));
        }
    }
    while let Some(MinEntry(d, u)) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for (v, w) in graph.neighbors(u) {
            if !in_region[v] {
                continue;
            }
            let cand = d + w;
            if cand < dist[v] {
                dist[v] = cand;
                parent[v] = Some(u);
                heap.push(MinEntry(cand, v));
            }
        }
    }
    (dist, parent)
}

/// Min-heap entry on (distance, vertex) for `BinaryHeap` (which is a
/// max-heap, so the ordering is reversed).
#[derive(PartialEq)]
struct MinEntry(f64, usize);

impl Eq for MinEntry {}

impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}

impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Picks a two-shortest-path separator of the region and returns the
/// paths plus the components of the region minus the paths.
fn separate(graph: &Graph, region: &[usize]) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let n = graph.len();
    let mut in_region = vec![false; n];
    for &v in region {
        in_region[v] = true;
    }
    let root = region[0];
    let (dist, parent) = region_dijkstra(graph, &in_region, &[(root, 0.0)]);
    let far = |d: &Vec<f64>| -> usize {
        *region
            .iter()
            .filter(|&&v| d[v].is_finite())
            .max_by(|&&a, &&b| d[a].total_cmp(&d[b]).then(a.cmp(&b)))
            // hopspan:allow(panic-in-lib) -- the Dijkstra source is in the region, so d has a finite entry
            .expect("region connected")
    };
    let u = far(&dist);
    let path1 = walk_up(&parent, u);
    let sep1: Vec<(usize, f64)> = path1.iter().map(|&v| (v, 0.0)).collect();
    let (dist_from_p1, _) = region_dijkstra(graph, &in_region, &sep1);
    let v = far(&dist_from_p1);
    let path2 = walk_up(&parent, v);
    let mut paths = vec![path1];
    if path2 != paths[0] {
        paths.push(path2);
    }
    // Components of the region minus the separator vertices.
    let mut removed = vec![false; n];
    for p in &paths {
        for &x in p {
            removed[x] = true;
        }
    }
    let mut seen: HashMap<usize, ()> = HashMap::new();
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for &s in region {
        if removed[s] || seen.contains_key(&s) {
            continue;
        }
        let mut stack = vec![s];
        seen.insert(s, ());
        let mut comp = vec![s];
        while let Some(x) = stack.pop() {
            for (y, _) in graph.neighbors(x) {
                if in_region[y] && !removed[y] && !seen.contains_key(&y) {
                    seen.insert(y, ());
                    comp.push(y);
                    stack.push(y);
                }
            }
        }
        comps.push(comp);
    }
    (paths, comps)
}

fn walk_up(parent: &[Option<usize>], mut v: usize) -> Vec<usize> {
    let mut path = vec![v];
    while let Some(p) = parent[v] {
        path.push(p);
        v = p;
    }
    path
}

fn min_edge_weight(graph: &Graph, a: usize, b: usize) -> f64 {
    graph
        .neighbors(a)
        .filter(|&(t, _)| t == b)
        .map(|(_, w)| w)
        .fold(f64::INFINITY, f64::min)
}

/// The spine tree: the separator path `P` plus a shortest-path forest
/// attaching every region vertex to `P`, with pendant leaves so that
/// leaves are 1-to-1 with region vertices.
fn spine_tree(graph: &Graph, region: &[usize], path: &[usize]) -> RegionTree {
    let n = graph.len();
    let mut in_region = vec![false; n];
    for &v in region {
        in_region[v] = true;
    }
    let sources: Vec<(usize, f64)> = path.iter().map(|&v| (v, 0.0)).collect();
    let (_, att_parent) = region_dijkstra(graph, &in_region, &sources);
    let mut on_path = vec![false; n];
    for &v in path {
        on_path[v] = true;
    }
    let mut rt = RegionTreeBuilder::new(region);
    for win in path.windows(2) {
        rt.attach(win[0], win[1], min_edge_weight(graph, win[0], win[1]));
    }
    for &v in region {
        if !on_path[v] {
            // hopspan:allow(panic-in-lib) -- the region is connected, so every off-path vertex attaches
            let p = att_parent[v].expect("region connected to path");
            rt.attach(v, p, min_edge_weight(graph, v, p));
        }
    }
    // hopspan:allow(panic-in-lib) -- separate() never emits an empty separator path
    rt.finish(*path.last().expect("non-empty path"))
}

/// An SPT tree rooted at `root` over the region (with pendant leaves).
fn spt_tree(graph: &Graph, region: &[usize], root: usize) -> RegionTree {
    let n = graph.len();
    let mut in_region = vec![false; n];
    for &v in region {
        in_region[v] = true;
    }
    let (_, parent) = region_dijkstra(graph, &in_region, &[(root, 0.0)]);
    let mut rt = RegionTreeBuilder::new(region);
    for &v in region {
        if let Some(p) = parent[v] {
            rt.attach(v, p, min_edge_weight(graph, v, p));
        }
    }
    rt.finish(root)
}

/// A star tree over the region centered at `c`, using region shortest
/// path distances (used only for tiny leaf regions).
fn star_tree(graph: &Graph, region: &[usize], c: usize) -> RegionTree {
    let n = graph.len();
    let mut in_region = vec![false; n];
    for &v in region {
        in_region[v] = true;
    }
    let (dist, _) = region_dijkstra(graph, &in_region, &[(c, 0.0)]);
    let mut parent = vec![None; region.len() + 1];
    let mut weight = vec![0.0; region.len() + 1];
    let mut point_of = vec![c];
    for (i, &v) in region.iter().enumerate() {
        point_of.push(v);
        parent[i + 1] = Some(0);
        weight[i + 1] = dist[v];
    }
    RegionTree {
        parent,
        weight,
        point_of,
        root: 0,
    }
}

/// Builds a region tree over the region's vertices (structural layer)
/// plus one pendant zero-weight leaf per vertex.
struct RegionTreeBuilder {
    ids: HashMap<usize, usize>,
    order: Vec<usize>,
    parent: Vec<Option<usize>>,
    weight: Vec<f64>,
}

impl RegionTreeBuilder {
    fn new(region: &[usize]) -> Self {
        let mut ids = HashMap::new();
        for (i, &v) in region.iter().enumerate() {
            ids.insert(v, i);
        }
        RegionTreeBuilder {
            ids,
            order: region.to_vec(),
            parent: vec![None; region.len()],
            weight: vec![0.0; region.len()],
        }
    }

    fn attach(&mut self, child: usize, parent: usize, w: f64) {
        let c = self.ids[&child];
        debug_assert!(self.parent[c].is_none(), "re-attaching {child}");
        self.parent[c] = Some(self.ids[&parent]);
        self.weight[c] = w;
    }

    fn finish(self, root: usize) -> RegionTree {
        let m = self.order.len();
        let mut parent = self.parent;
        let mut weight = self.weight;
        let mut point_of = self.order.clone();
        // Pendant leaves.
        for i in 0..m {
            parent.push(Some(i));
            weight.push(0.0);
            point_of.push(self.order[i]);
        }
        RegionTree {
            parent,
            weight,
            point_of,
            root: self.ids[&root],
        }
    }
}

/// Geometrically spaced portals along a shortest path: positions at
/// prefix distance ≈ (1+ε)^m from either endpoint.
fn geometric_portals(graph: &Graph, path: &[usize], eps: f64) -> Vec<usize> {
    if path.len() <= 2 {
        return path.to_vec();
    }
    let mut prefix = vec![0.0f64];
    let mut acc = 0.0f64;
    for win in path.windows(2) {
        acc += min_edge_weight(graph, win[0], win[1]);
        prefix.push(acc);
    }
    let total = acc;
    let mut marks: Vec<usize> = vec![0, path.len() - 1];
    // Forward sweep from the start, backward sweep from the end.
    let mut target = prefix[1].max(total * 1e-6);
    while target < total {
        if let Some(i) = (0..path.len()).find(|&i| prefix[i] >= target) {
            marks.push(i);
        }
        target *= 1.0 + eps;
    }
    let mut target = (total - prefix[path.len() - 2]).max(total * 1e-6);
    while target < total {
        if let Some(i) = (0..path.len()).rev().find(|&i| total - prefix[i] >= target) {
            marks.push(i);
        }
        target *= 1.0 + eps;
    }
    marks.sort_unstable();
    marks.dedup();
    marks.into_iter().map(|i| path[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopspan_metric::{gen, GraphMetric};

    #[test]
    fn grid_cover_valid_and_tight() {
        let g = gen::grid_graph(5, 5);
        let m = GraphMetric::new(&g).unwrap();
        let sc = SeparatorTreeCover::new(&g, 0.5).unwrap();
        sc.cover().validate(&m).unwrap();
        let s = sc.cover().measured_stretch(&m);
        assert!(s <= 3.0 + 1e-9, "stretch {s} above the guaranteed bound");
    }

    #[test]
    fn weighted_grid() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let g = gen::weighted_grid_graph(4, 5, &mut rng);
        let m = GraphMetric::new(&g).unwrap();
        let sc = SeparatorTreeCover::new(&g, 0.5).unwrap();
        sc.cover().validate(&m).unwrap();
        assert!(sc.cover().measured_stretch(&m) <= 3.0 + 1e-9);
    }

    #[test]
    fn portals_improve_stretch() {
        let g = gen::grid_graph(6, 6);
        let m = GraphMetric::new(&g).unwrap();
        let coarse = SeparatorTreeCover::new(&g, 1.0).unwrap();
        let fine = SeparatorTreeCover::new(&g, 0.2).unwrap();
        let sc = coarse.cover().measured_stretch(&m);
        let sf = fine.cover().measured_stretch(&m);
        assert!(
            sf <= sc + 1e-9,
            "more portals should not hurt: {sf} vs {sc}"
        );
        assert!(fine.tree_count() >= coarse.tree_count());
    }

    #[test]
    fn path_graph_cover() {
        // A path graph: the separator is the whole path; the spine tree
        // reproduces the metric exactly.
        let n = 10;
        let edges: Vec<_> = (1..n).map(|v| (v - 1, v, 1.0)).collect();
        let g = Graph::new(n, &edges).unwrap();
        let m = GraphMetric::new(&g).unwrap();
        let sc = SeparatorTreeCover::new(&g, 0.5).unwrap();
        let s = sc.cover().measured_stretch(&m);
        assert!(
            s <= 1.0 + 1e-9,
            "path metric should be covered exactly, got {s}"
        );
    }

    #[test]
    fn rejects_disconnected_and_empty() {
        let g = Graph::new(3, &[(0, 1, 1.0)]).unwrap();
        assert!(SeparatorTreeCover::new(&g, 0.5).is_err());
        let e = Graph::new(0, &[]).unwrap();
        assert!(SeparatorTreeCover::new(&e, 0.5).is_err());
    }

    #[test]
    fn zeta_polylog_shaped() {
        let g1 = gen::grid_graph(8, 8);
        let g2 = gen::grid_graph(16, 16);
        let t1 = SeparatorTreeCover::new(&g1, 0.5).unwrap().tree_count();
        let t2 = SeparatorTreeCover::new(&g2, 0.5).unwrap().tree_count();
        // Trees per vertex must decrease: ζ is polylog-shaped, not linear.
        assert!(
            (t2 as f64) / 256.0 <= 0.9 * (t1 as f64) / 64.0,
            "trees-per-vertex did not shrink: {t1}/64 -> {t2}/256"
        );
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::new(1, &[]).unwrap();
        let sc = SeparatorTreeCover::new(&g, 0.5).unwrap();
        assert!(sc.tree_count() >= 1);
    }
}
