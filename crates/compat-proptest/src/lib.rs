//! Offline, in-tree subset of the `proptest` 1.x API.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: range/tuple/collection strategies, the
//! `prop_map` / `prop_flat_map` / `no_shrink` combinators, and the
//! [`proptest!`] macro with `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case prints its
//! fully generated inputs instead of a minimized counterexample), and
//! seeds derive deterministically from the test's module path, so every
//! run replays the same cases — failures are reproducible by rerunning
//! the test rather than through a `proptest-regressions` file.

#![forbid(unsafe_code)]

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! The deterministic RNG behind case generation.

    /// SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded deterministically from `name` (FNV-1a).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            // Debiased multiply-shift.
            let zone = u64::MAX - u64::MAX.wrapping_sub(bound - 1) % bound.max(1);
            loop {
                let v = self.next_u64();
                if v <= zone || bound.is_power_of_two() {
                    return v % bound;
                }
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
        }
    }
}

pub mod strategy {
    //! Strategies: recipes for generating values.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Upstream disables shrinking here; this port never shrinks, so
        /// it is the identity.
        fn no_shrink(self) -> Self
        where
            Self: Sized,
        {
            self
        }

        /// Erases the strategy type (upstream `boxed`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// A type-erased strategy (upstream `BoxedStrategy`).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn ObjectSafeStrategy<Value = T>>,
    }

    trait ObjectSafeStrategy {
        type Value;
        fn new_value_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> ObjectSafeStrategy for S {
        type Value = S::Value;
        fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.new_value_dyn(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64, i32);

    impl Strategy for Range<u128> {
        type Value = u128;

        fn new_value(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            if span <= u64::MAX as u128 {
                self.start + rng.below(span as u64) as u128
            } else {
                let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start + v % span
            }
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies (`vec`, `hash_set`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// A size specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo).max(1) as u64) as usize
        }
    }

    /// Strategy for a `Vec` whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for a `HashSet` whose elements come from `element`. The
    /// realized size may land below the sampled target when the element
    /// domain is too small, but never below the range minimum if the
    /// domain allows it.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 20 * (target + 1) {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over generated cases. A failing
/// case prints its generated inputs (no shrinking) before propagating the
/// panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&$arg, &mut rng);)+
                let described = ::std::format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg,)+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case #{case} of {} failed with inputs:\n{described}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..500 {
            let x = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0.0f64..2.5).new_value(&mut rng);
            assert!((0.0..2.5).contains(&y));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::for_test("sizes");
        let v = crate::collection::vec(0usize..100, 7).new_value(&mut rng);
        assert_eq!(v.len(), 7);
        let s = crate::collection::hash_set((0i32..50, 0i32..50), 2..10).new_value(&mut rng);
        assert!((2..10).contains(&s.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(n in 1usize..50, scale in 1.0f64..2.0) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(scale >= 1.0);
            prop_assert_eq!(n, n);
            prop_assert_ne!(scale, 0.0);
        }

        #[test]
        fn flat_map_composes(v in (2usize..6).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n)
        }).no_shrink()) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }
}
