//! Sharded execution: backends, response slots, worker pools and the
//! [`ShardedNavigator`] front door.
//!
//! ## Request lifecycle (steady state, zero allocations)
//!
//! 1. Admission pops a response slot off the shard's free list and
//!    enqueues a fixed-size job on the shard's [`BatchQueue`] — no
//!    heap.
//! 2. A shard worker drains a batch (bounded, buffer reused), executes
//!    each job through its per-worker [`Scratch`] via the `_into`
//!    query kernels, and hands the result path to the slot by
//!    `mem::swap` — the slot's previous buffer becomes the worker's
//!    next result buffer, so path buffers *circulate* instead of being
//!    allocated.
//! 3. The submitter wakes on the slot's condvar, copies the path into
//!    its own reused buffer, and pushes the slot back on the free
//!    list.
//!
//! The slot table bounds admission: no free slot means the shard is at
//! depth, and the request is shed typed ([`ServeError::Overloaded`])
//! under `Strict` or served inline-degraded under `BestEffort`.
//!
//! ## Shard affinity
//!
//! [`shard_of_point`] hashes the query's first endpoint with the
//! workspace's FNV-1a. The function is pure and seed-free, so a replay
//! of a recorded campaign dispatches every request to the same shard
//! in every process — `std::collections::hash_map::DefaultHasher`
//! would not (its keys are randomized per process).
//!
//! ## Self-healing
//!
//! Each shard carries a lock-free [`HealthCell`]
//! (`Healthy → Suspect → Down`, see `health.rs`) fed by worker
//! observations: caught panics, internal errors and deadline overruns
//! demote, successes promote. Dispatch consults health with one atomic
//! load — requests owned by a `Down` shard fail over to a live replica
//! via a second deterministic FNV hash ([`ShardedNavigator::dispatch_for`]),
//! and [`ShardedNavigator::call`] retries `WorkerPanicked` answers
//! under a monotonic deadline budget with a seeded, bit-reproducible
//! backoff schedule ([`retry_backoff`]). A panicked shard with a
//! configured snapshot is quarantined and handed to a supervisor
//! thread, which rebuilds it from the `HSNP` file, checks the
//! `hx_hash` boot-fidelity witness, and re-admits it through `Suspect`
//! after a probe query.

use std::collections::HashSet;
use std::mem;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hopspan_core::{
    DegradationPolicy, FaultTolerantSpanner, FtError, FtPathOutcome, HopspanError, MetricNavigator,
    NavigationError,
};
use hopspan_dynamic::{DynConfig, DynError, DynamicNavigator};
use hopspan_metric::{EuclideanSpace, Metric};
use hopspan_routing::{MetricRoutingScheme, NavBuildError, RouteTrace, RoutingError};
use hopspan_store as store;
use rand::rngs::Pcg32;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::batch::{BatchQueue, Job};
use crate::health::{HealthCell, HealthPolicy, ShardHealth};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::{DegradeCode, Op, QueryOutcome, ServeError};

/// Recovers a mutex guard from a poisoned lock: state under every lock
/// here is written panic-atomically, so a poisoned guard is safe to
/// adopt.
fn lock_resilient<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Seed-stable shard affinity: FNV-1a over the point id's
/// little-endian bytes, reduced mod `shards`. Identical in every
/// process, on every platform, for every `HOPSPAN_WORKERS` setting.
///
/// # Panics
///
/// Panics when `shards == 0`: a zero shard count is a configuration
/// bug that [`ServeConfig`] validation rejects as
/// [`BuildError::Config`] before any dispatch can happen. Silently
/// mapping it to one shard (as this function once did) would let a
/// misconfigured caller route queries to a shard that does not exist.
pub fn shard_of_point(point: u32, shards: usize) -> usize {
    assert!(shards > 0, "shard_of_point requires shards >= 1");
    let h = crate::wire::fnv1a(&point.to_le_bytes());
    (h % shards as u64) as usize
}

/// Construction parameters for a [`Backend`].
#[derive(Debug, Clone)]
pub struct BackendParams {
    /// Seed for the backend's deterministic build RNG.
    pub seed: u64,
    /// Ramsey-cover tree budget ζ for the navigator.
    pub tree_budget: usize,
    /// Hop bound k.
    pub k: usize,
    /// Cover parameter ε for the fault-tolerant spanner.
    pub eps: f64,
    /// Fault tolerance f (0 disables the FT structure unless
    /// `build_ft` forces it).
    pub f: usize,
    /// Whether to build the Theorem 1.3 routing scheme (`Route`).
    pub build_router: bool,
    /// Whether to build the §6 FT spanner (`RouteAvoiding`).
    pub build_ft: bool,
}

impl Default for BackendParams {
    fn default() -> Self {
        BackendParams {
            seed: 0xE24,
            tree_budget: 12,
            k: 3,
            eps: 0.5,
            f: 1,
            build_router: true,
            build_ft: true,
        }
    }
}

/// The query kernel behind a [`Backend`]: either an immutable
/// navigator (the replicated/snapshot layouts) or a shared handle to
/// the epoch-swapped dynamic navigator, which additionally accepts
/// `Insert`/`Remove` and stamps every answer with its epoch id.
enum Engine {
    Static(MetricNavigator),
    Dynamic(Arc<DynamicNavigator>),
}

/// One shard's prebuilt query structures: the navigator plus the
/// optional routing scheme and fault-tolerant spanner.
pub struct Backend {
    metric: EuclideanSpace,
    engine: Engine,
    router: Option<MetricRoutingScheme>,
    ft: Option<FaultTolerantSpanner>,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("n", &self.metric.len())
            .field("dynamic", &matches!(self.engine, Engine::Dynamic(_)))
            .field("router", &self.router.is_some())
            .field("ft", &self.ft.is_some())
            .finish()
    }
}

impl Backend {
    /// Builds a backend replica for `points`. The build is
    /// deterministic in `params.seed` (and independent of
    /// `HOPSPAN_WORKERS`), so every replica of a shard set is
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates the underlying construction failures as
    /// [`BuildError`].
    pub fn build(points: &EuclideanSpace, params: &BackendParams) -> Result<Self, BuildError> {
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let (nav, _realized) =
            MetricNavigator::general_budgeted(points, params.tree_budget, params.k, &mut rng)
                .map_err(|e| BuildError::Backend(HopspanError::from(e)))?;
        let router = if params.build_router {
            let mut rrng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x5eed_0001);
            Some(MetricRoutingScheme::general(points, 2, &mut rrng).map_err(BuildError::Router)?)
        } else {
            None
        };
        let ft = if params.build_ft {
            Some(
                FaultTolerantSpanner::new(points, params.eps, params.f, params.k)
                    .map_err(|e| BuildError::Backend(HopspanError::from(e)))?,
            )
        } else {
            None
        };
        Ok(Backend {
            metric: points.clone(),
            engine: Engine::Static(nav),
            router,
            ft,
        })
    }

    /// Wraps a prebuilt navigator — typically one decoded from an
    /// `HSNP` snapshot — as a backend. The routing scheme and the
    /// fault-tolerant spanner are not part of the snapshot format, so
    /// `Route` / `RouteAvoiding` answer [`ServeError::Unsupported`] on
    /// a snapshot-booted backend.
    pub fn from_navigator(metric: EuclideanSpace, nav: MetricNavigator) -> Self {
        Backend {
            metric,
            engine: Engine::Static(nav),
            router: None,
            ft: None,
        }
    }

    /// Wraps a shared dynamic navigator as a backend. Dynamic backends
    /// accept `Insert`/`Remove`, stamp every reply with the serving
    /// epoch id and answer retired ids with
    /// [`ServeError::PointRetired`]. `Route`/`RouteAvoiding` and the
    /// snapshot opcodes are unsupported (the routing scheme, the FT
    /// spanner and the `HSNP` format are static-set structures).
    pub fn from_dynamic(nav: Arc<DynamicNavigator>) -> Self {
        let points: Vec<Vec<f64>> = nav
            .published_ids()
            .iter()
            .filter_map(|&id| nav.coords_of(id))
            .collect();
        Backend {
            metric: EuclideanSpace::from_points(&points),
            engine: Engine::Dynamic(nav),
            router: None,
            ft: None,
        }
    }

    /// The immutable navigator, when this backend is static.
    fn static_nav(&self) -> Option<&MetricNavigator> {
        match &self.engine {
            Engine::Static(nav) => Some(nav),
            Engine::Dynamic(_) => None,
        }
    }

    /// The shared dynamic navigator, when this backend is dynamic.
    fn dynamic_nav(&self) -> Option<&Arc<DynamicNavigator>> {
        match &self.engine {
            Engine::Static(_) => None,
            Engine::Dynamic(nav) => Some(nav),
        }
    }

    /// Number of points the backend serves.
    pub fn len(&self) -> usize {
        self.metric.len()
    }

    /// Whether the backend serves an empty point set.
    pub fn is_empty(&self) -> bool {
        self.metric.len() == 0
    }

    /// Executes one request through the caller's scratch buffers. The
    /// answer path lands in `scratch.out`.
    fn execute(
        &self,
        op: &Op,
        policy: DegradationPolicy,
        scratch: &mut Scratch,
    ) -> Result<QueryOutcome, ServeError> {
        scratch.epoch = 0; // static engines report epoch 0 on every answer
        match *op {
            Op::FindPath { u, v } => {
                match &self.engine {
                    Engine::Static(nav) => {
                        nav.find_path_into(u as usize, v as usize, &mut scratch.out)
                            .map_err(map_nav)?;
                    }
                    Engine::Dynamic(nav) => {
                        scratch.epoch = nav
                            .find_path_into(u, v, &mut scratch.out)
                            .map_err(map_nav)?;
                    }
                }
                Ok(QueryOutcome::Full)
            }
            Op::Route { u, v } => {
                let router = self.router.as_ref().ok_or(ServeError::Unsupported {
                    opcode: crate::wire::opcode::ROUTE,
                })?;
                router
                    .route_into(u as usize, v as usize, &mut scratch.trace)
                    .map_err(map_route)?;
                scratch.out.clear();
                scratch.out.extend_from_slice(&scratch.trace.path);
                Ok(QueryOutcome::Full)
            }
            Op::RouteAvoiding { u, v, faults } => {
                let ft = self.ft.as_ref().ok_or(ServeError::Unsupported {
                    opcode: crate::wire::opcode::ROUTE_AVOIDING,
                })?;
                scratch.fault_set.clear();
                for &p in faults.as_slice() {
                    scratch.fault_set.insert(p as usize);
                }
                let outcome = ft
                    .find_path_avoiding_policy_into(
                        &self.metric,
                        u as usize,
                        v as usize,
                        &scratch.fault_set,
                        policy,
                        &mut scratch.out,
                        &mut scratch.tree,
                    )
                    .map_err(map_ft)?;
                Ok(match outcome {
                    FtPathOutcome::Full => QueryOutcome::Full,
                    FtPathOutcome::Degraded {
                        reason,
                        achieved_stretch,
                    } => QueryOutcome::Degraded {
                        reason: DegradeCode::from(reason),
                        achieved_stretch,
                    },
                })
            }
            Op::Stats => {
                scratch.out.clear();
                if let Engine::Dynamic(nav) = &self.engine {
                    scratch.epoch = nav.epoch_id();
                }
                Ok(QueryOutcome::Stats)
            }
            Op::Insert { coords, dim } => {
                let nav = self.dynamic_nav().ok_or(ServeError::Unsupported {
                    opcode: crate::wire::opcode::INSERT,
                })?;
                let mut buf = [0f64; crate::MAX_WIRE_DIM];
                let dim = (dim as usize).min(crate::MAX_WIRE_DIM);
                for (slot, &bits) in buf.iter_mut().zip(&coords[..dim]) {
                    *slot = f64::from_bits(bits);
                }
                let (id, epoch) = nav.insert(&buf[..dim]).map_err(map_dyn)?;
                scratch.out.clear();
                scratch.epoch = epoch;
                Ok(QueryOutcome::Mutation { id, epoch })
            }
            Op::Remove { id } => {
                let nav = self.dynamic_nav().ok_or(ServeError::Unsupported {
                    opcode: crate::wire::opcode::REMOVE,
                })?;
                let epoch = nav.remove(id).map_err(map_dyn)?;
                scratch.out.clear();
                scratch.epoch = epoch;
                Ok(QueryOutcome::Mutation { id, epoch })
            }
        }
    }
}

fn map_nav(e: NavigationError) -> ServeError {
    match e {
        NavigationError::PointOutOfRange { point } => ServeError::BadEndpoint {
            point: point as u32,
        },
        NavigationError::PairNotCovered { u, v } => ServeError::Uncovered {
            u: u as u32,
            v: v as u32,
        },
        NavigationError::PointRetired { point } => ServeError::PointRetired {
            point: point as u32,
        },
        _ => ServeError::Internal,
    }
}

/// Maps dynamic-engine mutation failures to their wire-typed serve
/// errors. Validation failures are the client's fault (`BadRequest` /
/// `BadEndpoint` / `Duplicate` / `PointRetired`); only a failed
/// navigator build is `Internal`.
fn map_dyn(e: DynError) -> ServeError {
    match e {
        DynError::DuplicatePoint { of } => ServeError::Duplicate { of },
        DynError::UnknownId { id } => ServeError::BadEndpoint { point: id },
        DynError::AlreadyRetired { id } => ServeError::PointRetired { point: id },
        DynError::DimensionMismatch { .. }
        | DynError::NonFiniteCoordinate
        | DynError::TooFewPoints { .. } => ServeError::BadRequest,
        _ => ServeError::Internal,
    }
}

fn map_route(e: RoutingError) -> ServeError {
    match e {
        RoutingError::BadEndpoint { node } => ServeError::BadEndpoint { point: node as u32 },
        RoutingError::TooManyFaults { got, f } => ServeError::TooManyFaults {
            got: got as u32,
            limit: f as u32,
        },
        _ => ServeError::Internal,
    }
}

fn map_ft(e: FtError) -> ServeError {
    match e {
        FtError::BadEndpoint { point } => ServeError::BadEndpoint {
            point: point as u32,
        },
        FtError::TooManyFaults { got, f } => ServeError::TooManyFaults {
            got: got as u32,
            limit: f as u32,
        },
        FtError::NoSurvivingPath { u, v } => ServeError::Uncovered {
            u: u as u32,
            v: v as u32,
        },
        _ => ServeError::Internal,
    }
}

/// Per-worker reusable buffers: one of each `_into` kernel's scratch
/// needs. After warmup no query touches the allocator.
struct Scratch {
    out: Vec<usize>,
    tree: Vec<usize>,
    trace: RouteTrace,
    fault_set: HashSet<usize>,
    /// Epoch id the dynamic engine stamped on the last answer
    /// (`0` on static engines).
    epoch: u64,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            out: Vec::with_capacity(64),
            tree: Vec::with_capacity(64),
            trace: RouteTrace::default(),
            fault_set: HashSet::with_capacity(crate::MAX_WIRE_FAULTS * 4),
            epoch: 0,
        }
    }
}

/// One response slot: the rendezvous between a submitter and the
/// worker that answers it.
#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    done_cv: Condvar,
}

#[derive(Debug)]
struct SlotState {
    done: bool,
    outcome: Result<QueryOutcome, ServeError>,
    path: Vec<usize>,
    stats: MetricsSnapshot,
    /// Epoch id stamped by the worker (`0` on static engines).
    epoch: u64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState {
                done: false,
                outcome: Err(ServeError::Internal),
                path: Vec::with_capacity(64),
                stats: MetricsSnapshot::default(),
                epoch: 0,
            }),
            done_cv: Condvar::new(),
        }
    }
}

/// Per-shard state shared between submitters and the shard's workers.
#[derive(Debug)]
struct ShardInner {
    /// This shard's index in the engine's shard table.
    index: u32,
    /// The query structures. Behind a mutex only so the respawn
    /// supervisor can swap in a freshly decoded backend; workers take
    /// one `Arc` clone per batch flush, never per job, and submitters
    /// never touch it.
    backend: Mutex<Arc<Backend>>,
    queue: BatchQueue,
    slots: Vec<Slot>,
    free: Mutex<Vec<u32>>,
    /// Lock-free health state (read on every dispatch).
    health: HealthCell,
}

impl ShardInner {
    /// The current backend handle (one lock + `Arc` clone; no alloc).
    fn backend_arc(&self) -> Arc<Backend> {
        Arc::clone(&lock_resilient(&self.backend))
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shards.
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Maximum jobs a worker executes per batch flush.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits before a partial
    /// batch flushes (monotonic clock).
    pub batch_deadline: Duration,
    /// Response slots per shard — the admission limit.
    pub queue_depth: usize,
    /// What happens past the admission limit, and how over-budget
    /// fault sets are answered.
    pub policy: DegradationPolicy,
    /// Chaos hook: when `Some(p)`, every p-th job across the service
    /// panics inside the worker before executing (the panic must be
    /// contained and surfaced as [`ServeError::WorkerPanicked`]).
    pub chaos_panic_period: Option<u64>,
    /// Streak thresholds for the per-shard health state machine.
    pub health: HealthPolicy,
    /// When set, a job whose enqueue-to-completion latency exceeds
    /// this limit counts as a health-relevant failure (deadline
    /// overrun) even if its answer was correct.
    pub overrun_limit: Option<Duration>,
    /// Total monotonic time [`ShardedNavigator::call`] may spend
    /// retrying `WorkerPanicked` answers (backoff sleeps included).
    /// `Duration::ZERO` — the default — disables retries.
    pub retry_budget: Duration,
    /// Seed of the deterministic retry backoff schedule (see
    /// [`retry_backoff`]).
    pub retry_seed: u64,
    /// Chaos hook: when `Some((shard, delay))`, every job executed by
    /// that shard's workers sleeps `delay` first — a wedged/slow shard
    /// that the overrun limit must eventually demote.
    pub chaos_slow_shard: Option<(usize, Duration)>,
    /// Load easing for `Suspect` shards in a replicated engine: the
    /// per-mille of a suspect shard's owned requests it keeps serving.
    /// The shed fraction is re-routed to a strictly-`Healthy` replica
    /// picked by a second FNV-1a hash, so the easing decision is a
    /// pure function of `(affinity point, owner)` — bit-identical in
    /// every process. `1000` (the default) keeps everything on the
    /// owner, i.e. easing off; `0` sheds all suspect-owned traffic.
    pub suspect_keep_permille: u16,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            max_batch: 16,
            batch_deadline: Duration::from_micros(200),
            queue_depth: 256,
            policy: DegradationPolicy::Strict,
            chaos_panic_period: None,
            health: HealthPolicy::default(),
            overrun_limit: None,
            retry_budget: Duration::ZERO,
            retry_seed: 0x5eed_0b0f,
            chaos_slow_shard: None,
            suspect_keep_permille: 1000,
        }
    }
}

/// Service construction failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// A navigator or fault-tolerant structure failed to build.
    Backend(HopspanError),
    /// The routing scheme failed to build.
    Router(NavBuildError),
    /// A worker thread could not be spawned.
    Spawn(std::io::Error),
    /// The configuration is structurally invalid.
    Config(&'static str),
    /// A boot snapshot could not be read, decoded or validated.
    Store(store::StoreError),
    /// The dynamic navigator's initial build failed.
    Dynamic(DynError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Backend(e) => write!(f, "backend build failed: {e}"),
            BuildError::Router(e) => write!(f, "routing scheme build failed: {e}"),
            BuildError::Spawn(e) => write!(f, "worker spawn failed: {e}"),
            BuildError::Config(why) => write!(f, "invalid serve config: {why}"),
            BuildError::Store(e) => write!(f, "snapshot boot failed: {e}"),
            BuildError::Dynamic(e) => write!(f, "dynamic engine build failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Backend(e) => Some(e),
            BuildError::Router(e) => Some(e),
            BuildError::Spawn(e) => Some(e),
            BuildError::Config(_) => None,
            BuildError::Store(e) => Some(e),
            BuildError::Dynamic(e) => Some(e),
        }
    }
}

/// The sharded, batched, admission-controlled query service.
///
/// See the [module docs](self) for the request lifecycle. Dropping the
/// service closes every shard queue, drains the backlog and joins all
/// workers.
#[derive(Debug)]
pub struct ShardedNavigator {
    shards: Vec<Arc<ShardInner>>,
    metrics: Arc<ServeMetrics>,
    cfg: ServeConfig,
    workers: Vec<JoinHandle<()>>,
    /// Whether shards are independent replicas (failover can re-route
    /// a `Down` shard's requests) or share one backend (failover
    /// answers inline instead).
    replicated: bool,
    /// State shared with the respawn supervisor thread.
    sup: Arc<SupervisorShared>,
    supervisor: Option<JoinHandle<()>>,
}

/// State shared between the engine, its workers and the respawn
/// supervisor thread.
#[derive(Debug)]
struct SupervisorShared {
    /// Pending respawn requests (shard indices) plus the stop flag.
    respawn_q: Mutex<RespawnQueue>,
    wake: Condvar,
    /// The file the `Snapshot`/`LoadSnapshot` opcodes and the respawn
    /// supervisor operate on.
    snapshot_path: Mutex<Option<PathBuf>>,
    /// `hx_hash` of the live navigator, recorded when the snapshot
    /// path is configured — the boot-fidelity witness a respawned
    /// backend must reproduce. `0` means "no snapshot configured"
    /// (respawn disabled; panics fall back to streak counting).
    witness: AtomicU64,
}

#[derive(Debug, Default)]
struct RespawnQueue {
    respawns: Vec<u32>,
    stop: bool,
}

/// Enqueues a respawn request for `shard` (deduplicated) and wakes the
/// supervisor.
fn request_respawn(sup: &SupervisorShared, shard: u32) {
    let mut q = lock_resilient(&sup.respawn_q);
    if q.stop || q.respawns.contains(&shard) {
        return;
    }
    q.respawns.push(shard);
    drop(q);
    sup.wake.notify_one();
}

impl ShardedNavigator {
    /// Builds `cfg.shards` independent backend replicas of `points`
    /// and starts the worker pools. Replica builds are deterministic,
    /// so all replicas are bit-identical; the replication buys
    /// isolation (per-shard queues and workers), not divergence.
    ///
    /// # Errors
    ///
    /// [`BuildError`] on invalid configuration, backend build failure
    /// or thread-spawn failure.
    pub fn replicated(
        points: &EuclideanSpace,
        params: &BackendParams,
        cfg: ServeConfig,
    ) -> Result<Self, BuildError> {
        validate(&cfg)?;
        let mut backends = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            backends.push(Arc::new(Backend::build(points, params)?));
        }
        Self::from_backends(backends, cfg, true)
    }

    /// Starts the service with every shard serving the same shared
    /// backend. Query structures are immutable after construction, so
    /// sharing a replica across shards is safe and trades the
    /// replicated memory footprint for none of the queue/worker
    /// isolation.
    ///
    /// # Errors
    ///
    /// [`BuildError`] on invalid configuration or thread-spawn
    /// failure.
    pub fn shared(backend: Arc<Backend>, cfg: ServeConfig) -> Result<Self, BuildError> {
        validate(&cfg)?;
        let backends = (0..cfg.shards).map(|_| Arc::clone(&backend)).collect();
        Self::from_backends(backends, cfg, false)
    }

    /// Starts the service over an online point set: every shard serves
    /// one shared [`DynamicNavigator`], so a mutation admitted on any
    /// shard is visible to all of them (one ledger, one epoch
    /// sequence — replicas would diverge under concurrent mutation,
    /// which is why dynamic engines only come in the shared layout).
    /// `Insert`/`Remove` become servable opcodes and every reply
    /// carries the serving epoch id.
    ///
    /// # Errors
    ///
    /// [`BuildError::Dynamic`] when the initial build fails; the usual
    /// [`BuildError`]s otherwise.
    pub fn dynamic(
        points: &[Vec<f64>],
        dyn_cfg: DynConfig,
        cfg: ServeConfig,
    ) -> Result<Self, BuildError> {
        validate(&cfg)?;
        let nav = DynamicNavigator::new(points, dyn_cfg).map_err(BuildError::Dynamic)?;
        let backend = Arc::new(Backend::from_dynamic(Arc::new(nav)));
        let backends = (0..cfg.shards).map(|_| Arc::clone(&backend)).collect();
        Self::from_backends(backends, cfg, false)
    }

    /// The shared dynamic navigator, when the engine was built with
    /// [`ShardedNavigator::dynamic`]. Chaos campaigns and benchmarks
    /// use this to drive mutations and read epoch/H_X witnesses
    /// without going through the wire.
    pub fn dynamic_handle(&self) -> Option<Arc<DynamicNavigator>> {
        self.backend_of(0).dynamic_nav().cloned()
    }

    fn from_backends(
        backends: Vec<Arc<Backend>>,
        cfg: ServeConfig,
        replicated: bool,
    ) -> Result<Self, BuildError> {
        let metrics = Arc::new(ServeMetrics::default());
        let panic_counter = Arc::new(AtomicU64::new(0));
        let sup = Arc::new(SupervisorShared {
            respawn_q: Mutex::new(RespawnQueue {
                respawns: Vec::with_capacity(cfg.shards),
                stop: false,
            }),
            wake: Condvar::new(),
            snapshot_path: Mutex::new(None),
            witness: AtomicU64::new(0),
        });
        let mut shards = Vec::with_capacity(cfg.shards);
        for (index, backend) in backends.into_iter().enumerate() {
            let slots = (0..cfg.queue_depth).map(|_| Slot::new()).collect();
            let free = (0..cfg.queue_depth as u32).rev().collect();
            shards.push(Arc::new(ShardInner {
                index: index as u32,
                backend: Mutex::new(backend),
                queue: BatchQueue::bounded(cfg.queue_depth),
                slots,
                free: Mutex::new(free),
                health: HealthCell::default(),
            }));
        }
        let mut workers = Vec::with_capacity(cfg.shards * cfg.workers_per_shard);
        for (si, shard) in shards.iter().enumerate() {
            for wi in 0..cfg.workers_per_shard {
                let shard = Arc::clone(shard);
                let metrics = Arc::clone(&metrics);
                let wcfg = cfg.clone();
                let counter = Arc::clone(&panic_counter);
                let wsup = Arc::clone(&sup);
                let handle = std::thread::Builder::new()
                    .name(format!("hopspan-serve-{si}-{wi}"))
                    .spawn(move || worker_loop(&shard, &metrics, &wcfg, &counter, &wsup))
                    .map_err(BuildError::Spawn)?;
                workers.push(handle);
            }
        }
        let supervisor = {
            let shards = shards.clone();
            let metrics = Arc::clone(&metrics);
            let ssup = Arc::clone(&sup);
            let scfg = cfg.clone();
            std::thread::Builder::new()
                .name("hopspan-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&shards, &metrics, &ssup, &scfg))
                .map_err(BuildError::Spawn)?
        };
        Ok(ShardedNavigator {
            shards,
            metrics,
            cfg,
            workers,
            replicated,
            sup,
            supervisor: Some(supervisor),
        })
    }

    /// Boots the service from an `HSNP` snapshot file: one disk read,
    /// then one decode per shard replica. Decoding revalidates instead
    /// of rebuilding — the cover/spanner construction is skipped
    /// entirely, which is what makes snapshot boot fast (E25 measures
    /// the speedup). Snapshot-booted backends have no routing scheme
    /// or fault-tolerant spanner.
    ///
    /// # Errors
    ///
    /// [`BuildError::Store`] when the file is unreadable, corrupt or
    /// fails deep validation; the usual [`BuildError`]s otherwise.
    pub fn replicated_from_snapshot(path: &Path, cfg: ServeConfig) -> Result<Self, BuildError> {
        validate(&cfg)?;
        let bytes = store::read_snapshot_bytes(path).map_err(BuildError::Store)?;
        let mut backends = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            let snap = store::decode_snapshot(&bytes).map_err(BuildError::Store)?;
            backends.push(Arc::new(Backend::from_navigator(
                snap.points,
                snap.navigator,
            )));
        }
        let engine = Self::from_backends(backends, cfg, true)?;
        engine.set_snapshot_path(path);
        Ok(engine)
    }

    /// Boots the service from an `HSNP` snapshot file with a single
    /// decode shared by every shard (the [`ShardedNavigator::shared`]
    /// memory layout).
    ///
    /// # Errors
    ///
    /// [`BuildError::Store`] when the file is unreadable, corrupt or
    /// fails deep validation; the usual [`BuildError`]s otherwise.
    pub fn shared_from_snapshot(path: &Path, cfg: ServeConfig) -> Result<Self, BuildError> {
        validate(&cfg)?;
        let (snap, _digest) = store::read_snapshot_file(path).map_err(BuildError::Store)?;
        let backend = Arc::new(Backend::from_navigator(snap.points, snap.navigator));
        let backends = (0..cfg.shards).map(|_| Arc::clone(&backend)).collect();
        let engine = Self::from_backends(backends, cfg, false)?;
        engine.set_snapshot_path(path);
        Ok(engine)
    }

    /// Configures the file the `Snapshot` / `LoadSnapshot` wire
    /// opcodes and the respawn supervisor operate on. The snapshot
    /// boot constructors set this to the file they booted from.
    /// Setting a path also records the live navigator's `hx_hash` as
    /// the boot-fidelity witness and arms panic quarantine + respawn.
    pub fn set_snapshot_path(&self, path: impl Into<PathBuf>) {
        *lock_resilient(&self.sup.snapshot_path) = Some(path.into());
        // Dynamic engines have no stable navigator to witness (the
        // published epoch changes under mutation), so respawn stays
        // disarmed there (witness 0).
        let hx = self.backend_of(0).static_nav().map_or(0, store::hx_hash);
        self.sup.witness.store(hx, Ordering::Relaxed);
    }

    /// The configured snapshot path, if any.
    pub fn snapshot_path(&self) -> Option<PathBuf> {
        lock_resilient(&self.sup.snapshot_path).clone()
    }

    /// The current backend handle of shard `index`.
    fn backend_of(&self, index: usize) -> Arc<Backend> {
        self.shards[index].backend_arc()
    }

    /// Current health of shard `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range, like any shard indexing.
    pub fn health(&self, index: usize) -> ShardHealth {
        self.shards[index].health.get()
    }

    /// Forces shard `index` to `state` — the scripted failure-
    /// injection hook chaos campaigns and the determinism pins drive.
    /// The transition is published to the metrics health word, and a
    /// forced demotion to `Down` counts as a down event.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range, like any shard indexing.
    pub fn set_health(&self, index: usize, state: ShardHealth) {
        let shard = &self.shards[index];
        let was = shard.health.get();
        shard.health.set(state);
        self.metrics.set_health_byte(index, state.code());
        if state == ShardHealth::Down && was != ShardHealth::Down {
            ServeMetrics::bump(&self.metrics.shard_down_events);
        }
    }

    /// Serializes shard 0's backend to the configured snapshot path
    /// (wire opcode `SNAPSHOT`). Replicas are bit-identical, so one
    /// shard's structures are the whole service's structures.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] when no snapshot path is
    /// configured; [`ServeError::Internal`] on filesystem failure.
    pub fn write_snapshot(&self) -> Result<store::SnapshotDigest, ServeError> {
        let path = self.snapshot_path().ok_or(ServeError::Unsupported {
            opcode: crate::wire::opcode::SNAPSHOT,
        })?;
        let backend = self.backend_of(0);
        let nav = backend.static_nav().ok_or(ServeError::Unsupported {
            opcode: crate::wire::opcode::SNAPSHOT,
        })?;
        store::write_snapshot_file(&path, &backend.metric, nav, None)
            .map_err(|_| ServeError::Internal)
    }

    /// Reads the configured snapshot back, revalidates it end to end
    /// and checks that its spanner hash matches the live structures
    /// (wire opcode `LOAD_SNAPSHOT`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] when no snapshot path is
    /// configured; [`ServeError::Internal`] when the file is missing,
    /// corrupt or disagrees with the live backend.
    pub fn load_snapshot_verify(&self) -> Result<store::SnapshotDigest, ServeError> {
        let path = self.snapshot_path().ok_or(ServeError::Unsupported {
            opcode: crate::wire::opcode::LOAD_SNAPSHOT,
        })?;
        let (snap, digest) = store::read_snapshot_file(&path).map_err(|_| ServeError::Internal)?;
        let backend = self.backend_of(0);
        let nav = backend.static_nav().ok_or(ServeError::Unsupported {
            opcode: crate::wire::opcode::LOAD_SNAPSHOT,
        })?;
        if store::hx_hash(&snap.navigator) != store::hx_hash(nav) {
            return Err(ServeError::Internal);
        }
        Ok(digest)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of points each shard serves.
    pub fn points(&self) -> usize {
        self.shards.first().map_or(0, |s| s.backend_arc().len())
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The service's live metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// A point-in-time metrics snapshot (what the `Stats` opcode
    /// ships). On a dynamic engine the builder-side counters (rebuild
    /// count, per-shard epoch bytes) are reconciled first.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if let Some(nav) = self.backend_of(0).dynamic_nav() {
            self.metrics
                .rebuilds
                .store(nav.counters().rebuilds, Ordering::Relaxed);
            let byte = (nav.epoch_id() & 0xff) as u8;
            for i in 0..self.shards.len() {
                self.metrics.set_epoch_byte(i, byte);
            }
        }
        self.metrics.snapshot()
    }

    /// The shard that *owns* `op` (FNV-1a affinity on the first
    /// endpoint), health-blind. See
    /// [`ShardedNavigator::dispatch_for`] for the health-aware target.
    pub fn shard_for(&self, op: &Op) -> usize {
        shard_of_point(op.affinity_point(), self.shards.len())
    }

    /// The shard `op` is actually dispatched to: the owner
    /// ([`ShardedNavigator::shard_for`]) unless that shard is `Down`
    /// in a replicated engine, in which case the request fails over to
    /// the k-th healthy shard, k picked by a second FNV-1a hash over
    /// the affinity point and the owner index. The choice is a pure
    /// function of the health configuration — every process, at every
    /// `HOPSPAN_WORKERS` setting, re-routes the same request to the
    /// same replica (pinned by `tests/failover_determinism.rs`). With
    /// zero healthy shards, or in shared mode, the owner is returned
    /// unchanged and answers typed.
    ///
    /// A `Suspect` owner additionally sheds a deterministic fraction
    /// of its load when [`ServeConfig::suspect_keep_permille`] is
    /// below 1000: a per-request FNV-1a roll over
    /// `(affinity point, owner, 0x51)` decides keep-vs-shed, and shed
    /// requests re-route to a strictly-`Healthy` replica. The easing
    /// gives a recovering shard headroom to clear its probation streak
    /// instead of being re-demoted by its own backlog.
    pub fn dispatch_for(&self, op: &Op) -> usize {
        let owner = self.shard_for(op);
        if !self.replicated {
            return owner;
        }
        match self.shards[owner].health.get() {
            ShardHealth::Down => self
                .pick_alternate(op.affinity_point(), owner, false)
                .unwrap_or(owner),
            ShardHealth::Suspect if self.cfg.suspect_keep_permille < 1000 => {
                let mut key = [0u8; 9];
                key[..4].copy_from_slice(&op.affinity_point().to_le_bytes());
                key[4..8].copy_from_slice(&(owner as u32).to_le_bytes());
                key[8] = 0x51; // domain separator vs the Down-failover hash
                let roll = (crate::wire::fnv1a(&key) % 1000) as u16;
                if roll < self.cfg.suspect_keep_permille {
                    owner
                } else {
                    self.pick_alternate(op.affinity_point(), owner, true)
                        .unwrap_or(owner)
                }
            }
            _ => owner,
        }
    }

    /// Picks the deterministic alternate shard for a request owned by
    /// `owner`: the k-th eligible shard, k drawn by a second FNV-1a
    /// hash over `(point, owner)`. `strict` restricts eligibility to
    /// `Healthy` shards (suspect easing); otherwise any non-`Down`
    /// shard qualifies (down failover — the hash input is unchanged
    /// from the pre-easing code, so existing failover pins hold).
    fn pick_alternate(&self, point: u32, owner: usize, strict: bool) -> Option<usize> {
        let eligible = |h: ShardHealth| {
            if strict {
                h == ShardHealth::Healthy
            } else {
                h != ShardHealth::Down
            }
        };
        let count = self
            .shards
            .iter()
            .filter(|s| eligible(s.health.get()))
            .count();
        if count == 0 {
            return None;
        }
        let mut key = [0u8; 8];
        key[..4].copy_from_slice(&point.to_le_bytes());
        key[4..].copy_from_slice(&(owner as u32).to_le_bytes());
        let pick = (crate::wire::fnv1a(&key) % count as u64) as usize;
        let mut seen = 0usize;
        for (i, s) in self.shards.iter().enumerate() {
            if !eligible(s.health.get()) {
                continue;
            }
            if seen == pick {
                return Some(i);
            }
            seen += 1;
        }
        None // a shard flipped mid-scan; the owner still answers typed
    }

    /// Submits a request for batched execution. Returns a
    /// [`Pending`] handle to wait on, or [`ServeError::Overloaded`]
    /// when the target shard is at depth — regardless of policy; use
    /// [`ShardedNavigator::call`] for the policy-aware front door.
    /// Requests owned by a `Down` shard fail over per
    /// [`ShardedNavigator::dispatch_for`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] at the admission limit,
    /// [`ServeError::ShuttingDown`] once the service is draining.
    pub fn try_submit(&self, op: Op) -> Result<Pending<'_>, ServeError> {
        ServeMetrics::bump(&self.metrics.submitted);
        let owner = self.shard_for(&op);
        let si = self.dispatch_for(&op);
        if si != owner {
            ServeMetrics::bump(&self.metrics.failovers);
        }
        let shard = &self.shards[si];
        let slot = lock_resilient(&shard.free).pop();
        let Some(slot) = slot else {
            ServeMetrics::bump(&self.metrics.shed);
            return Err(ServeError::Overloaded {
                depth: self.cfg.queue_depth as u32,
            });
        };
        let job = Job {
            slot,
            op,
            enqueued: Instant::now(),
        };
        if !shard.queue.push(job) {
            lock_resilient(&shard.free).push(slot);
            return Err(ServeError::ShuttingDown);
        }
        Ok(Pending {
            engine: self,
            shard: si as u32,
            slot,
        })
    }

    /// Executes `op` inline on the calling thread, bypassing the
    /// queue. The answer is marked [`DegradeCode::Overload`] — the
    /// path may be in contract, but the service's batching/latency
    /// contract was not. This is the `BestEffort` overload escape
    /// hatch; it allocates (fresh scratch) and is deliberately *not*
    /// on the zero-alloc steady-state path.
    ///
    /// # Errors
    ///
    /// The same typed errors a queued execution can produce.
    pub fn call_inline(&self, op: Op, out: &mut Vec<usize>) -> Result<QueryOutcome, ServeError> {
        self.call_inline_with(op, out, DegradeCode::Overload)
            .map(|(outcome, _epoch)| outcome)
    }

    /// Inline execution with an explicit degrade reason —
    /// [`DegradeCode::Overload`] for the admission escape hatch,
    /// [`DegradeCode::ShardDown`] for shared-mode failover. Returns
    /// the serving epoch id alongside the outcome (`0` on static
    /// engines).
    fn call_inline_with(
        &self,
        op: Op,
        out: &mut Vec<usize>,
        reason: DegradeCode,
    ) -> Result<(QueryOutcome, u64), ServeError> {
        ServeMetrics::bump(&self.metrics.inline_served);
        let backend = self.backend_of(self.shard_for(&op));
        let mut scratch = Scratch::new();
        let outcome = backend.execute(&op, self.cfg.policy, &mut scratch);
        let epoch = scratch.epoch;
        out.clear();
        out.extend_from_slice(&scratch.out);
        match outcome {
            Ok(QueryOutcome::Stats) => Ok((QueryOutcome::Stats, epoch)),
            Ok(m @ QueryOutcome::Mutation { .. }) => {
                // A mutation has no batching contract to degrade: the
                // commit is the commit, inline or queued.
                ServeMetrics::bump(&self.metrics.completed);
                self.note_mutation(&op);
                Ok((m, epoch))
            }
            Ok(_) => {
                ServeMetrics::bump(&self.metrics.completed);
                ServeMetrics::bump(&self.metrics.degraded);
                Ok((
                    QueryOutcome::Degraded {
                        reason,
                        achieved_stretch: realized_stretch(&backend.metric, out),
                    },
                    epoch,
                ))
            }
            Err(e) => {
                ServeMetrics::bump(&self.metrics.completed);
                ServeMetrics::bump(&self.metrics.errors);
                Err(e)
            }
        }
    }

    /// Bumps the mutation counters for an inline-committed mutation
    /// (the queued path does this in `run_job`).
    fn note_mutation(&self, op: &Op) {
        match op {
            Op::Insert { .. } => ServeMetrics::bump(&self.metrics.inserts),
            Op::Remove { .. } => ServeMetrics::bump(&self.metrics.removes),
            _ => {}
        }
    }

    /// The policy-aware front door: queue the request, wait for the
    /// batched answer, and on overload either shed typed (`Strict`)
    /// or fall back to a degraded inline answer (`BestEffort`).
    ///
    /// Resilience behavior on top of that contract:
    ///
    /// * **Shared-mode failover** — when the owning shard is `Down`
    ///   and there are no replicas to re-route to, `BestEffort`
    ///   answers inline as `Degraded{ShardDown}` instead of queueing
    ///   on the quarantined shard.
    /// * **Deadline-budgeted retries** — a `WorkerPanicked` answer is
    ///   retried while the backoff sleep still fits inside
    ///   [`ServeConfig::retry_budget`] (monotonic-clock accounting;
    ///   the budget covers sleeps *and* queue waits, so a retry can
    ///   never blow the caller's latency budget by more than one
    ///   batch). The schedule is deterministic — see [`retry_backoff`].
    ///
    /// # Errors
    ///
    /// Typed [`ServeError`]s; under `Strict`,
    /// [`ServeError::Overloaded`] past the admission limit.
    pub fn call(&self, op: Op, out: &mut Vec<usize>) -> Result<QueryOutcome, ServeError> {
        self.call_with_epoch(op, out)
            .map(|(outcome, _epoch)| outcome)
    }

    /// [`ShardedNavigator::call`] plus the serving epoch id, for
    /// callers (the wire front) that echo epochs in replies. Static
    /// engines always report epoch `0`.
    ///
    /// # Errors
    ///
    /// Identical to [`ShardedNavigator::call`].
    pub fn call_with_epoch(
        &self,
        op: Op,
        out: &mut Vec<usize>,
    ) -> Result<(QueryOutcome, u64), ServeError> {
        if !self.replicated
            && self.cfg.policy == DegradationPolicy::BestEffort
            && self.shards[self.shard_for(&op)].health.get() == ShardHealth::Down
        {
            return self.call_inline_with(op, out, DegradeCode::ShardDown);
        }
        let retry_budget = self.cfg.retry_budget;
        let started = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let result = match self.try_submit(op) {
                Ok(pending) => pending.wait_epoch_into(out),
                Err(ServeError::Overloaded { .. })
                    if self.cfg.policy == DegradationPolicy::BestEffort =>
                {
                    // The rejection is recovered inline, so it was not
                    // actually shed; undo try_submit's shed bump.
                    ServeMetrics::unbump(&self.metrics.shed);
                    return self.call_inline_with(op, out, DegradeCode::Overload);
                }
                Err(e) => Err(e),
            };
            if !matches!(result, Err(ServeError::WorkerPanicked)) {
                return result;
            }
            // Deadline-budgeted retry: the next backoff sleep must fit
            // in what remains of `retry_budget` (saturating monotonic
            // math — an exhausted budget returns the typed error).
            attempt += 1;
            let delay = retry_backoff(self.cfg.retry_seed, retry_key(&op), attempt);
            let Some(remaining_budget) = retry_budget.checked_sub(started.elapsed()) else {
                return result;
            };
            if delay >= remaining_budget {
                return result;
            }
            ServeMetrics::bump(&self.metrics.retries);
            std::thread::sleep(delay);
        }
    }

    /// Releases a slot back to its shard's free list.
    fn release(&self, shard: u32, slot: u32) {
        lock_resilient(&self.shards[shard as usize].free).push(slot);
    }
}

impl Drop for ShardedNavigator {
    fn drop(&mut self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        for handle in self.workers.drain(..) {
            // A worker's unwind already surfaced as `WorkerPanicked`
            // on the affected slots; nothing is left to report here.
            let _join = handle.join();
        }
        lock_resilient(&self.sup.respawn_q).stop = true;
        self.sup.wake.notify_all();
        if let Some(handle) = self.supervisor.take() {
            let _join = handle.join();
        }
    }
}

fn validate(cfg: &ServeConfig) -> Result<(), BuildError> {
    if cfg.shards == 0 {
        return Err(BuildError::Config("shards must be >= 1"));
    }
    if cfg.workers_per_shard == 0 {
        return Err(BuildError::Config("workers_per_shard must be >= 1"));
    }
    if cfg.max_batch == 0 {
        return Err(BuildError::Config("max_batch must be >= 1"));
    }
    if cfg.queue_depth == 0 {
        return Err(BuildError::Config("queue_depth must be >= 1"));
    }
    if cfg.queue_depth > u32::MAX as usize {
        return Err(BuildError::Config("queue_depth exceeds u32"));
    }
    if cfg.suspect_keep_permille > 1000 {
        return Err(BuildError::Config("suspect_keep_permille exceeds 1000"));
    }
    Ok(())
}

/// A submitted request: wait on it to collect the answer. Dropping a
/// `Pending` without waiting leaks its slot for the service's
/// lifetime, so every submit should be paired with a wait.
#[must_use = "a Pending that is never waited on leaks its response slot"]
#[derive(Debug)]
pub struct Pending<'a> {
    engine: &'a ShardedNavigator,
    shard: u32,
    slot: u32,
}

impl Pending<'_> {
    /// Blocks until the answer lands, copies the path into `out`
    /// (cleared first) and releases the slot.
    ///
    /// # Errors
    ///
    /// The typed [`ServeError`] the worker recorded, if any.
    pub fn wait_into(self, out: &mut Vec<usize>) -> Result<QueryOutcome, ServeError> {
        let (outcome, _, _) = self.wait_raw(out);
        outcome
    }

    /// Like [`Pending::wait_into`], additionally returning the serving
    /// epoch id (`0` on static engines).
    ///
    /// # Errors
    ///
    /// The typed [`ServeError`] the worker recorded, if any.
    pub fn wait_epoch_into(self, out: &mut Vec<usize>) -> Result<(QueryOutcome, u64), ServeError> {
        let (outcome, _, epoch) = self.wait_raw(out);
        outcome.map(|o| (o, epoch))
    }

    /// Blocks until the answer lands and returns the stats snapshot a
    /// [`Op::Stats`] request produced.
    ///
    /// # Errors
    ///
    /// The typed [`ServeError`] the worker recorded, if any;
    /// [`ServeError::BadRequest`] when the request was not `Stats`.
    pub fn wait_stats(self) -> Result<MetricsSnapshot, ServeError> {
        let mut sink = Vec::new();
        let (outcome, stats, _) = self.wait_raw(&mut sink);
        match outcome? {
            QueryOutcome::Stats => Ok(stats),
            _ => Err(ServeError::BadRequest),
        }
    }

    fn wait_raw(
        self,
        out: &mut Vec<usize>,
    ) -> (Result<QueryOutcome, ServeError>, MetricsSnapshot, u64) {
        let shard = &self.engine.shards[self.shard as usize];
        let slot = &shard.slots[self.slot as usize];
        let mut st = lock_resilient(&slot.state);
        while !st.done {
            st = slot
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.done = false;
        let outcome = st.outcome;
        let stats = st.stats;
        let epoch = st.epoch;
        out.clear();
        out.extend_from_slice(&st.path);
        drop(st);
        self.engine.release(self.shard, self.slot);
        (outcome, stats, epoch)
    }
}

/// Realized stretch of a path under `metric` (`1.0` for degenerate
/// pairs), for marking inline answers. Paths from a dynamic engine
/// can carry external ids past the initial metric's range; those
/// report the neutral `1.0` instead of indexing out of bounds.
fn realized_stretch<M: Metric>(metric: &M, path: &[usize]) -> f64 {
    if path.iter().any(|&p| p >= metric.len()) {
        return 1.0;
    }
    let (Some(&u), Some(&v)) = (path.first(), path.last()) else {
        return 1.0;
    };
    let d = metric.dist(u, v);
    if d <= 0.0 {
        return 1.0;
    }
    let w: f64 = path.windows(2).map(|w| metric.dist(w[0], w[1])).sum();
    (w / d).max(1.0)
}

/// The request key feeding [`retry_backoff`]: opcode plus affinity
/// point, so distinct requests draw from distinct PCG streams.
fn retry_key(op: &Op) -> u64 {
    (u64::from(op.opcode()) << 32) | u64::from(op.affinity_point())
}

/// The deterministic retry backoff schedule: attempt `attempt`
/// (1-based) sleeps `base + jitter` where `base = 2^min(attempt, 10)`
/// microseconds and `jitter ∈ [0, base]` µs is drawn from a PCG-32
/// stream keyed by `(seed ^ request_key, attempt)` — the same
/// construction as the chaos harness's `scenario_rng`, so the full
/// retry schedule of a campaign is bit-identical in every process and
/// at every `HOPSPAN_WORKERS` setting. Pure: no clocks, no global
/// state, no allocation.
#[must_use]
pub fn retry_backoff(seed: u64, request_key: u64, attempt: u32) -> Duration {
    let mut rng = Pcg32::new(seed ^ request_key, u64::from(attempt));
    let base_us = 1u64 << attempt.min(10);
    let jitter_us = rng.gen_range(0..base_us + 1);
    Duration::from_micros(base_us + jitter_us)
}

/// Everything a worker needs to execute one job, bundled so the
/// per-job call stays within clippy's argument budget.
struct JobCtx<'a> {
    shard: &'a ShardInner,
    backend: &'a Backend,
    metrics: &'a ServeMetrics,
    cfg: &'a ServeConfig,
    panic_counter: &'a AtomicU64,
    sup: &'a SupervisorShared,
}

/// The shard worker: drain a batch, execute each job through the
/// reused scratch, deliver by buffer swap, repeat until the queue
/// closes.
fn worker_loop(
    shard: &ShardInner,
    metrics: &ServeMetrics,
    cfg: &ServeConfig,
    panic_counter: &AtomicU64,
    sup: &SupervisorShared,
) {
    let mut scratch = Scratch::new();
    let mut batch: Vec<Job> = Vec::with_capacity(cfg.max_batch);
    while shard
        .queue
        .next_batch(cfg.max_batch, cfg.batch_deadline, &mut batch)
    {
        if batch.is_empty() {
            continue;
        }
        ServeMetrics::bump(&metrics.batches);
        ServeMetrics::add(&metrics.batched_jobs, batch.len() as u64);
        // One backend handle per flush: the supervisor may swap a
        // respawned backend in between batches, never within one.
        let backend = shard.backend_arc();
        let ctx = JobCtx {
            shard,
            backend: &backend,
            metrics,
            cfg,
            panic_counter,
            sup,
        };
        for job in &batch {
            run_job(&ctx, job, &mut scratch);
        }
    }
}

fn run_job(ctx: &JobCtx<'_>, job: &Job, scratch: &mut Scratch) {
    if let Some((target, delay)) = ctx.cfg.chaos_slow_shard {
        if target == ctx.shard.index as usize && !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
    let inject = ctx
        .cfg
        .chaos_panic_period
        .is_some_and(|p| (ctx.panic_counter.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(p));
    let result = catch_unwind(AssertUnwindSafe(|| {
        if inject {
            // hopspan:allow(panic-in-lib) -- deterministic chaos-injection hook; contained by the catch_unwind above
            panic!("injected worker panic (chaos_panic_period)");
        }
        ctx.backend.execute(&job.op, ctx.cfg.policy, scratch)
    }));
    let outcome = match result {
        Ok(r) => r,
        Err(_) => {
            // The panic may have left scratch buffers mid-write; clear
            // them so the next job starts clean.
            scratch.out.clear();
            scratch.tree.clear();
            scratch.fault_set.clear();
            Err(ServeError::WorkerPanicked)
        }
    };
    record_health(ctx, job, &outcome);
    ServeMetrics::bump(&ctx.metrics.completed);
    match &outcome {
        Ok(QueryOutcome::Degraded { .. }) => ServeMetrics::bump(&ctx.metrics.degraded),
        Ok(QueryOutcome::Mutation { .. }) => match job.op {
            Op::Insert { .. } => ServeMetrics::bump(&ctx.metrics.inserts),
            Op::Remove { .. } => ServeMetrics::bump(&ctx.metrics.removes),
            _ => {}
        },
        Ok(_) => {}
        Err(_) => ServeMetrics::bump(&ctx.metrics.errors),
    }
    if scratch.epoch != 0 {
        // Dynamic engine: publish the low byte of the serving epoch to
        // this shard's slot in the packed epoch word.
        ctx.metrics
            .set_epoch_byte(ctx.shard.index as usize, (scratch.epoch & 0xff) as u8);
    }
    let stats = if matches!(job.op, Op::Stats) {
        if let Some(nav) = ctx.backend.dynamic_nav() {
            // Rebuilds happen on the builder thread, outside any
            // worker; reconcile the counter when stats are served.
            ctx.metrics
                .rebuilds
                .store(nav.counters().rebuilds, Ordering::Relaxed);
        }
        ctx.metrics.snapshot()
    } else {
        MetricsSnapshot::default()
    };
    let slot = &ctx.shard.slots[job.slot as usize];
    let mut st = lock_resilient(&slot.state);
    mem::swap(&mut st.path, &mut scratch.out);
    st.outcome = outcome;
    st.stats = stats;
    st.epoch = scratch.epoch;
    st.done = true;
    drop(st);
    slot.done_cv.notify_one();
    ctx.metrics
        .latency
        .record_ns(job.enqueued.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
}

/// Feeds one job's outcome into the shard's health state machine.
/// Health-relevant failures are worker panics, internal errors and
/// deadline overruns; client-typed errors (bad endpoint, over-budget
/// fault sets, …) prove the worker is alive and count as successes.
fn record_health(ctx: &JobCtx<'_>, job: &Job, outcome: &Result<QueryOutcome, ServeError>) {
    match outcome {
        Err(ServeError::WorkerPanicked) => {
            // A caught panic with a respawn snapshot configured is the
            // strongest signal: quarantine immediately and hand the
            // shard to the supervisor. Without a snapshot the panic
            // falls back to streak counting — one contained panic
            // among successes must not take the shard down.
            if ctx.sup.witness.load(Ordering::Relaxed) != 0 {
                if ctx.shard.health.quarantine() {
                    ServeMetrics::bump(&ctx.metrics.shard_down_events);
                }
                ctx.metrics
                    .set_health_byte(ctx.shard.index as usize, ShardHealth::Down.code());
                request_respawn(ctx.sup, ctx.shard.index);
            } else if let Some(next) = ctx.shard.health.record_failure(&ctx.cfg.health) {
                note_transition(ctx.metrics, ctx.shard.index, next);
            }
        }
        Err(ServeError::Internal) => {
            if let Some(next) = ctx.shard.health.record_failure(&ctx.cfg.health) {
                note_transition(ctx.metrics, ctx.shard.index, next);
            }
        }
        _ => {
            let overrun = ctx
                .cfg
                .overrun_limit
                .is_some_and(|limit| job.enqueued.elapsed() > limit);
            let change = if overrun {
                ctx.shard.health.record_failure(&ctx.cfg.health)
            } else {
                ctx.shard.health.record_success(&ctx.cfg.health)
            };
            if let Some(next) = change {
                note_transition(ctx.metrics, ctx.shard.index, next);
            }
        }
    }
}

/// Publishes a streak-driven health transition to the metrics word.
fn note_transition(metrics: &ServeMetrics, index: u32, next: ShardHealth) {
    metrics.set_health_byte(index as usize, next.code());
    if next == ShardHealth::Down {
        ServeMetrics::bump(&metrics.shard_down_events);
    }
}

/// The respawn supervisor: waits for quarantined shard indices and
/// rebuilds each from the configured snapshot. One thread per engine;
/// exits when the engine drops.
fn supervisor_loop(
    shards: &[Arc<ShardInner>],
    metrics: &ServeMetrics,
    sup: &SupervisorShared,
    cfg: &ServeConfig,
) {
    loop {
        let index = {
            let mut q = lock_resilient(&sup.respawn_q);
            loop {
                if q.stop {
                    return;
                }
                if let Some(i) = q.respawns.pop() {
                    break i;
                }
                q = sup
                    .wake
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if let Some(shard) = shards.get(index as usize) {
            respawn_shard(shard, metrics, sup, cfg);
        }
    }
}

/// Rebuilds one quarantined shard from the configured snapshot and
/// re-admits it: read → decode → `hx_hash` witness check → swap the
/// fresh backend in → `Suspect` → probe query → `Healthy`. Every
/// failure leaves the shard `Down` (the next panic on it queues
/// another attempt); a corrupt or divergent snapshot is never
/// re-admitted.
fn respawn_shard(
    shard: &ShardInner,
    metrics: &ServeMetrics,
    sup: &SupervisorShared,
    cfg: &ServeConfig,
) {
    let path = lock_resilient(&sup.snapshot_path).clone();
    let Some(path) = path else { return };
    let Ok(bytes) = store::read_snapshot_bytes(&path) else {
        return;
    };
    let Ok(snap) = store::decode_snapshot(&bytes) else {
        return;
    };
    let witness = sup.witness.load(Ordering::Relaxed);
    if witness != 0 && store::hx_hash(&snap.navigator) != witness {
        return;
    }
    let fresh = Arc::new(Backend::from_navigator(snap.points, snap.navigator));
    *lock_resilient(&shard.backend) = Arc::clone(&fresh);
    shard.health.set(ShardHealth::Suspect);
    metrics.set_health_byte(shard.index as usize, ShardHealth::Suspect.code());
    // Boot-fidelity probe: one real query through the fresh backend.
    // Any outcome that is not `Internal` proves the kernel executes.
    let mut scratch = Scratch::new();
    let probe_ok = if fresh.is_empty() {
        true
    } else {
        let v = if fresh.len() >= 2 { 1 } else { 0 };
        let probe = Op::FindPath { u: 0, v };
        !matches!(
            fresh.execute(&probe, cfg.policy, &mut scratch),
            Err(ServeError::Internal)
        )
    };
    if probe_ok {
        shard.health.set(ShardHealth::Healthy);
        metrics.set_health_byte(shard.index as usize, ShardHealth::Healthy.code());
        ServeMetrics::bump(&metrics.respawns);
    } else {
        shard.health.set(ShardHealth::Down);
        metrics.set_health_byte(shard.index as usize, ShardHealth::Down.code());
    }
}
