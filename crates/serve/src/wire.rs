//! The versioned, length-prefixed binary wire protocol.
//!
//! Every frame on the wire is a little-endian `u32` body length
//! followed by the body:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `"HSPN"` |
//! | 4      | 2    | version (`u16` LE, currently [`VERSION`]) |
//! | 6      | 1    | opcode ([`opcode`]) |
//! | 7      | 1    | status ([`status`]; `0` in requests) |
//! | 8      | 8    | request id (`u64` LE, echoed in the response) |
//! | 16     | n    | opcode/status-specific payload |
//! | 16 + n | 8    | FNV-1a checksum (`u64` LE) over bytes `0 .. 16 + n` |
//!
//! The checksum uses the workspace's golden-hash FNV-1a, so a frame's
//! bytes are seed-stable across processes and platforms. Any
//! single-byte corruption of the body is rejected typed: magic and
//! version mismatches name themselves, everything else fails the
//! checksum (pinned by the proptest in `tests/wire_roundtrip.rs`).
//!
//! Encoders append to their output buffer (they do not clear it), so a
//! client can pack a whole pipeline of frames into one buffer and issue
//! a single write. With warmed buffers encoding performs no heap
//! allocation.

use crate::{DegradeCode, FaultSet, MetricsSnapshot, Op, QueryOutcome, ServeError};

/// Frame magic: `"HSPN"`.
pub const MAGIC: [u8; 4] = *b"HSPN";

/// Current protocol version. Bump on any layout change; golden byte
/// pins in `tests/wire_roundtrip.rs` fail when the layout drifts
/// without a bump. Version 2 widened the `Stats` payload from 10 to
/// 15 × `u64` (resilience counters + the packed health word).
/// Version 3 added the `Insert`/`Remove` mutation opcodes, widened
/// `Stats` to 19 × `u64` (mutation counters + the packed epoch word)
/// and inserted the answering epoch id into every path response — a
/// v2 peer is answered with a typed `ERR_UNSUPPORTED`, never a
/// misparsed frame.
pub const VERSION: u16 = 3;

/// Maximum accepted body length (excluding the 4-byte prefix). Large
/// enough for a stats snapshot or a k-hop path at any practical k;
/// small enough that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME: u32 = 64 * 1024;

/// Fixed header length: magic + version + opcode + status + request id.
pub const HEADER_LEN: usize = 16;

/// Trailing checksum length.
pub const CHECKSUM_LEN: usize = 8;

/// Request/response opcodes.
pub mod opcode {
    /// Theorem 1.2 navigation path query.
    pub const FIND_PATH: u8 = 0;
    /// Theorem 1.3 compact-routing query.
    pub const ROUTE: u8 = 1;
    /// §6 fault-avoiding query.
    pub const ROUTE_AVOIDING: u8 = 2;
    /// Metrics snapshot.
    pub const STATS: u8 = 3;
    /// Write an `HSNP` structure snapshot to the server's configured
    /// path. Handled at the connection layer (not a batched query);
    /// the response carries the written size and checksum.
    pub const SNAPSHOT: u8 = 4;
    /// Re-load and verify the configured structure snapshot against
    /// the live backend. Same response payload as `SNAPSHOT`.
    pub const LOAD_SNAPSHOT: u8 = 5;
    /// Online point insert (dynamic engines; wire v3). Payload:
    /// `dim u8 · dim × f64-bits u64`.
    pub const INSERT: u8 = 6;
    /// Online point remove (dynamic engines; wire v3). Payload:
    /// `id u32`.
    pub const REMOVE: u8 = 7;
}

/// Response status bytes. `0`/`1` carry answers; `2..` carry typed
/// failures ([`ServeError`]); [`ERR_WIRE`] answers an undecodable
/// request frame.
pub mod status {
    /// In-contract answer.
    pub const OK: u8 = 0;
    /// Best-effort degraded answer.
    pub const OK_DEGRADED: u8 = 1;
    /// [`crate::ServeError::Overloaded`].
    pub const ERR_OVERLOADED: u8 = 2;
    /// [`crate::ServeError::ShuttingDown`].
    pub const ERR_SHUTTING_DOWN: u8 = 3;
    /// [`crate::ServeError::BadRequest`].
    pub const ERR_BAD_REQUEST: u8 = 4;
    /// [`crate::ServeError::BadEndpoint`].
    pub const ERR_BAD_ENDPOINT: u8 = 5;
    /// [`crate::ServeError::Uncovered`].
    pub const ERR_UNCOVERED: u8 = 6;
    /// [`crate::ServeError::TooManyFaults`].
    pub const ERR_TOO_MANY_FAULTS: u8 = 7;
    /// [`crate::ServeError::WorkerPanicked`].
    pub const ERR_WORKER_PANIC: u8 = 8;
    /// [`crate::ServeError::Unsupported`].
    pub const ERR_UNSUPPORTED: u8 = 9;
    /// [`crate::ServeError::Internal`].
    pub const ERR_INTERNAL: u8 = 10;
    /// The request frame itself failed to decode; the body echoes no
    /// payload and the connection closes after this frame.
    pub const ERR_WIRE: u8 = 11;
    /// [`crate::ServeError::PointRetired`] (wire v3).
    pub const ERR_RETIRED: u8 = 12;
    /// [`crate::ServeError::Duplicate`] (wire v3).
    pub const ERR_DUPLICATE: u8 = 13;
}

/// Typed decode failures. Every corrupted, truncated or
/// version-skewed frame lands in exactly one of these — never a panic,
/// never a silent misparse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The body is shorter than header + checksum, or shorter than its
    /// payload claims.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The version field does not match [`VERSION`].
    BadVersion {
        /// The version the peer sent.
        got: u16,
    },
    /// The FNV-1a checksum does not match the body.
    BadChecksum {
        /// Checksum computed over the received bytes.
        expected: u64,
        /// Checksum carried by the frame.
        got: u64,
    },
    /// The opcode byte is not a known [`opcode`].
    UnknownOpcode {
        /// The offending byte.
        got: u8,
    },
    /// The status byte is not a known [`status`].
    UnknownStatus {
        /// The offending byte.
        got: u8,
    },
    /// The payload does not parse under its opcode/status.
    BadPayload,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed body length.
        len: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::Truncated { need, got } => {
                write!(f, "truncated frame: need {need} bytes, got {got}")
            }
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (want {VERSION})")
            }
            WireError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: computed {expected:016x}, frame says {got:016x}"
                )
            }
            WireError::UnknownOpcode { got } => write!(f, "unknown opcode {got}"),
            WireError::UnknownStatus { got } => write!(f, "unknown status {got}"),
            WireError::BadPayload => write!(f, "payload does not parse"),
            WireError::Oversized { len } => {
                write!(f, "length prefix {len} exceeds the {MAX_FRAME}-byte cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over a byte slice (the workspace golden-hash convention).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded frame: header fields plus a borrowed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// The frame's opcode byte.
    pub opcode: u8,
    /// The frame's status byte (`0` in requests).
    pub status: u8,
    /// The request id (echoed by responses).
    pub request_id: u64,
    /// The opcode/status-specific payload bytes.
    pub payload: &'a [u8],
}

/// Starts a frame in `out`: length-prefix placeholder plus header.
/// Returns the index of the placeholder for [`end_frame`].
fn begin_frame(op: u8, st: u8, request_id: u64, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(op);
    out.push(st);
    out.extend_from_slice(&request_id.to_le_bytes());
    start
}

/// Seals a frame begun at `start`: appends the checksum and backfills
/// the length prefix.
fn end_frame(start: usize, out: &mut Vec<u8>) {
    let cs = fnv1a(&out[start + 4..]);
    out.extend_from_slice(&cs.to_le_bytes());
    let body_len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Encodes a raw frame (length prefix + body) from explicit header
/// fields and payload bytes. Higher-level encoders below are built on
/// this; it is public so tests and fuzzers can build arbitrary frames.
pub fn encode_frame_into(op: u8, st: u8, request_id: u64, payload: &[u8], out: &mut Vec<u8>) {
    let start = begin_frame(op, st, request_id, out);
    out.extend_from_slice(payload);
    end_frame(start, out);
}

/// Decodes a frame body (after the length prefix has been consumed).
///
/// # Errors
///
/// A typed [`WireError`] for truncation, bad magic, version skew, or a
/// checksum mismatch. Opcode/status bytes are *not* validated here —
/// [`decode_request`]/[`decode_response`] own that, so a checksum-valid
/// frame with an unknown opcode still yields its request id for the
/// error reply.
pub fn decode_frame(body: &[u8]) -> Result<FrameView<'_>, WireError> {
    let min = HEADER_LEN + CHECKSUM_LEN;
    if body.len() < min {
        return Err(WireError::Truncated {
            need: min,
            got: body.len(),
        });
    }
    if body[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([body[4], body[5]]);
    if version != VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let cs_at = body.len() - CHECKSUM_LEN;
    let expected = fnv1a(&body[..cs_at]);
    let got = u64::from_le_bytes(
        body[cs_at..]
            .try_into()
            .map_err(|_| WireError::BadPayload)?,
    );
    if expected != got {
        return Err(WireError::BadChecksum { expected, got });
    }
    let request_id = u64::from_le_bytes(body[8..16].try_into().map_err(|_| WireError::BadPayload)?);
    Ok(FrameView {
        opcode: body[6],
        status: body[7],
        request_id,
        payload: &body[HEADER_LEN..cs_at],
    })
}

/// Best-effort request id extraction from a frame body that failed
/// full decoding (e.g. version skew): the header layout through the
/// request id field is version-invariant, so a typed error reply can
/// still echo the peer's id. Returns `0` when the body is too short.
#[must_use]
pub fn request_id_best_effort(body: &[u8]) -> u64 {
    body.get(8..16)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .unwrap_or(0)
}

/// Encodes a request frame for `op`.
pub fn encode_request_into(request_id: u64, op: &Op, out: &mut Vec<u8>) {
    let start = begin_frame(op.opcode(), status::OK, request_id, out);
    match *op {
        Op::FindPath { u, v } | Op::Route { u, v } => {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Op::RouteAvoiding { u, v, faults } => {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
            out.push(faults.as_slice().len() as u8);
            for &p in faults.as_slice() {
                out.extend_from_slice(&p.to_le_bytes());
            }
        }
        Op::Stats => {}
        Op::Insert { coords, dim } => {
            out.push(dim);
            for &c in coords.iter().take(usize::from(dim)) {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        Op::Remove { id } => {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    end_frame(start, out);
}

fn read_u32(b: &[u8], at: usize) -> Result<u32, WireError> {
    at.checked_add(4)
        .and_then(|end| b.get(at..end))
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(WireError::BadPayload)
}

fn read_u64(b: &[u8], at: usize) -> Result<u64, WireError> {
    at.checked_add(8)
        .and_then(|end| b.get(at..end))
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or(WireError::BadPayload)
}

/// Decodes a checksum-valid frame as a request.
///
/// # Errors
///
/// [`WireError::UnknownOpcode`] or [`WireError::BadPayload`] when the
/// frame is well-formed but not a valid request.
pub fn decode_request(frame: &FrameView<'_>) -> Result<Op, WireError> {
    let p = frame.payload;
    let exact = |want: usize| {
        if p.len() == want {
            Ok(())
        } else {
            Err(WireError::BadPayload)
        }
    };
    match frame.opcode {
        opcode::FIND_PATH => {
            exact(8)?;
            Ok(Op::FindPath {
                u: read_u32(p, 0)?,
                v: read_u32(p, 4)?,
            })
        }
        opcode::ROUTE => {
            exact(8)?;
            Ok(Op::Route {
                u: read_u32(p, 0)?,
                v: read_u32(p, 4)?,
            })
        }
        opcode::ROUTE_AVOIDING => {
            if p.len() < 9 {
                return Err(WireError::BadPayload);
            }
            let nf = usize::from(p[8]);
            if nf > crate::MAX_WIRE_FAULTS {
                return Err(WireError::BadPayload);
            }
            let want = nf
                .checked_mul(4)
                .and_then(|n| n.checked_add(9))
                .ok_or(WireError::BadPayload)?;
            exact(want)?;
            let mut ids = [0u32; crate::MAX_WIRE_FAULTS];
            for (slot, raw) in ids.iter_mut().zip(p[9..want].chunks_exact(4)) {
                *slot = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]);
            }
            let faults = FaultSet::new(&ids[..nf]).map_err(|_| WireError::BadPayload)?;
            Ok(Op::RouteAvoiding {
                u: read_u32(p, 0)?,
                v: read_u32(p, 4)?,
                faults,
            })
        }
        opcode::STATS => {
            exact(0)?;
            Ok(Op::Stats)
        }
        opcode::INSERT => {
            if p.is_empty() {
                return Err(WireError::BadPayload);
            }
            let dim_byte = p[0];
            let dim = usize::from(dim_byte);
            if dim == 0 || dim > crate::MAX_WIRE_DIM {
                return Err(WireError::BadPayload);
            }
            let want = dim
                .checked_mul(8)
                .and_then(|n| n.checked_add(1))
                .ok_or(WireError::BadPayload)?;
            exact(want)?;
            let mut coords = [0u64; crate::MAX_WIRE_DIM];
            for (slot, raw) in coords.iter_mut().zip(p[1..want].chunks_exact(8)) {
                *slot = u64::from_le_bytes([
                    raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7],
                ]);
            }
            Ok(Op::Insert {
                coords,
                dim: dim_byte,
            })
        }
        opcode::REMOVE => {
            exact(4)?;
            Ok(Op::Remove {
                id: read_u32(p, 0)?,
            })
        }
        got => Err(WireError::UnknownOpcode { got }),
    }
}

/// Encodes a successful path response: status [`status::OK`] or
/// [`status::OK_DEGRADED`], payload `reason u8 · stretch-bits u64 ·
/// epoch u64 · len u32 · len × point u32`. `epoch` is the id of the
/// epoch that answered (`0` on static engines) — the staleness witness
/// a dynamic-engine client compares against the epoch ids its
/// mutations returned.
pub fn encode_path_response_into(
    request_id: u64,
    op: u8,
    outcome: QueryOutcome,
    epoch: u64,
    path: &[usize],
    out: &mut Vec<u8>,
) {
    let (st, reason, stretch) = match outcome {
        QueryOutcome::Degraded {
            reason,
            achieved_stretch,
        } => (status::OK_DEGRADED, reason.code(), achieved_stretch),
        QueryOutcome::Full | QueryOutcome::Stats | QueryOutcome::Mutation { .. } => {
            (status::OK, 0u8, 1.0f64)
        }
    };
    let start = begin_frame(op, st, request_id, out);
    out.push(reason);
    out.extend_from_slice(&stretch.to_bits().to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(path.len() as u32).to_le_bytes());
    for &p in path {
        out.extend_from_slice(&(p as u32).to_le_bytes());
    }
    end_frame(start, out);
}

/// Encodes a mutation response ([`opcode::INSERT`] /
/// [`opcode::REMOVE`]): status [`status::OK`], payload `id u32 ·
/// epoch u64` — the affected external id and the epoch id current when
/// the mutation committed.
pub fn encode_mutation_response_into(
    request_id: u64,
    op: u8,
    id: u32,
    epoch: u64,
    out: &mut Vec<u8>,
) {
    let start = begin_frame(op, status::OK, request_id, out);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    end_frame(start, out);
}

/// Encodes a structure-snapshot request ([`opcode::SNAPSHOT`] or
/// [`opcode::LOAD_SNAPSHOT`]): empty payload.
pub fn encode_snapshot_request_into(request_id: u64, op: u8, out: &mut Vec<u8>) {
    let start = begin_frame(op, status::OK, request_id, out);
    end_frame(start, out);
}

/// Encodes a structure-snapshot response: status [`status::OK`],
/// payload `bytes u64 · checksum u64` (the snapshot file's digest).
pub fn encode_snapshot_response_into(
    request_id: u64,
    op: u8,
    bytes: u64,
    checksum: u64,
    out: &mut Vec<u8>,
) {
    let start = begin_frame(op, status::OK, request_id, out);
    out.extend_from_slice(&bytes.to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    end_frame(start, out);
}

/// Encodes a stats response: status [`status::OK`], payload
/// [`MetricsSnapshot::WIRE_FIELDS`] × `u64`.
pub fn encode_stats_response_into(request_id: u64, snap: &MetricsSnapshot, out: &mut Vec<u8>) {
    let start = begin_frame(opcode::STATS, status::OK, request_id, out);
    for v in snap.wire_fields() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    end_frame(start, out);
}

/// Encodes a typed error response: the error's status byte, payload
/// two detail `u32`s ([`ServeError::wire_params`]).
pub fn encode_error_response_into(request_id: u64, op: u8, err: ServeError, out: &mut Vec<u8>) {
    let (a, b) = err.wire_params();
    let start = begin_frame(op, err.status(), request_id, out);
    out.extend_from_slice(&a.to_le_bytes());
    out.extend_from_slice(&b.to_le_bytes());
    end_frame(start, out);
}

/// Encodes the reply to an undecodable request frame: status
/// [`status::ERR_WIRE`], empty payload. `request_id` is best-effort
/// (zero when the header itself was unreadable).
pub fn encode_wire_error_into(request_id: u64, out: &mut Vec<u8>) {
    let start = begin_frame(opcode::STATS, status::ERR_WIRE, request_id, out);
    end_frame(start, out);
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A path answer (possibly degraded).
    Path {
        /// Contract status of the answer.
        outcome: QueryOutcome,
        /// Id of the epoch that answered (`0` on static engines).
        epoch: u64,
        /// The path, source first.
        path: Vec<u32>,
    },
    /// A committed mutation: the affected id and its commit epoch.
    Mutation {
        /// The inserted or removed external id.
        id: u32,
        /// The epoch id current at commit time.
        epoch: u64,
    },
    /// A stats snapshot.
    Stats(MetricsSnapshot),
    /// A structure-snapshot digest (answers [`opcode::SNAPSHOT`] and
    /// [`opcode::LOAD_SNAPSHOT`]).
    Snapshot {
        /// Snapshot file size in bytes.
        bytes: u64,
        /// The snapshot's trailing FNV-1a checksum.
        checksum: u64,
    },
    /// A typed service failure.
    Error(ServeError),
    /// The peer could not decode our request frame.
    WireRejected,
}

/// Decodes a checksum-valid frame as a response.
///
/// # Errors
///
/// [`WireError::UnknownStatus`] or [`WireError::BadPayload`] when the
/// frame is well-formed but not a valid response.
pub fn decode_response(frame: &FrameView<'_>) -> Result<Response, WireError> {
    let p = frame.payload;
    match frame.status {
        status::OK if frame.opcode == opcode::STATS => {
            let mut chunks = p.chunks_exact(8);
            if chunks.len() != MetricsSnapshot::WIRE_FIELDS || !chunks.remainder().is_empty() {
                return Err(WireError::BadPayload);
            }
            let mut fields = [0u64; MetricsSnapshot::WIRE_FIELDS];
            for (f, raw) in fields.iter_mut().zip(&mut chunks) {
                *f = u64::from_le_bytes([
                    raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7],
                ]);
            }
            Ok(Response::Stats(MetricsSnapshot::from_wire_fields(&fields)))
        }
        status::OK if frame.opcode == opcode::SNAPSHOT || frame.opcode == opcode::LOAD_SNAPSHOT => {
            if p.len() != 16 {
                return Err(WireError::BadPayload);
            }
            Ok(Response::Snapshot {
                bytes: read_u64(p, 0)?,
                checksum: read_u64(p, 8)?,
            })
        }
        status::OK if frame.opcode == opcode::INSERT || frame.opcode == opcode::REMOVE => {
            if p.len() != 12 {
                return Err(WireError::BadPayload);
            }
            Ok(Response::Mutation {
                id: read_u32(p, 0)?,
                epoch: read_u64(p, 4)?,
            })
        }
        status::OK | status::OK_DEGRADED => {
            if p.len() < 21 {
                return Err(WireError::BadPayload);
            }
            let reason = p[0];
            let stretch = f64::from_bits(read_u64(p, 1)?);
            let epoch = read_u64(p, 9)?;
            let len = usize::try_from(read_u32(p, 17)?).map_err(|_| WireError::BadPayload)?;
            let want = len
                .checked_mul(4)
                .and_then(|n| n.checked_add(21))
                .ok_or(WireError::BadPayload)?;
            if p.len() != want {
                return Err(WireError::BadPayload);
            }
            let mut path = Vec::with_capacity(len);
            for raw in p[21..want].chunks_exact(4) {
                path.push(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]));
            }
            let outcome = if frame.status == status::OK {
                QueryOutcome::Full
            } else {
                QueryOutcome::Degraded {
                    reason: DegradeCode::from_code(reason).ok_or(WireError::BadPayload)?,
                    achieved_stretch: stretch,
                }
            };
            Ok(Response::Path {
                outcome,
                epoch,
                path,
            })
        }
        status::ERR_WIRE => {
            if p.is_empty() {
                Ok(Response::WireRejected)
            } else {
                Err(WireError::BadPayload)
            }
        }
        st => {
            if p.len() != 8 {
                return Err(WireError::BadPayload);
            }
            let a = read_u32(p, 0)?;
            let b = read_u32(p, 4)?;
            ServeError::from_wire(st, a, b)
                .map(Response::Error)
                .ok_or(WireError::UnknownStatus { got: st })
        }
    }
}
