//! Deadline-aware request batching.
//!
//! A [`BatchQueue`] is a bounded MPMC queue of jobs with a
//! batch-collecting consumer side: a worker blocks until at least one
//! job is queued, then keeps accumulating until either the batch is
//! full or the *oldest* queued job has waited past the flush deadline.
//! Deadline math uses the monotonic clock exclusively
//! ([`std::time::Instant`]); `SystemTime` can step backwards under NTP
//! and must never decide a flush.
//!
//! The queue's backing `VecDeque` is allocated once at the bound and
//! never grows (admission is capped by the shard's slot table, which is
//! the same bound), so pushes and batch drains are allocation-free.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::Op;

/// Recovers a mutex guard from a poisoned lock: queue state is a
/// `VecDeque` plus a flag, and every mutation below is
/// panic-atomic, so the contents stay coherent even if a holder died.
fn lock_resilient<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One queued request: which response slot it answers into, what to
/// do, and when it arrived (monotonic).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    /// Index into the shard's slot table.
    pub slot: u32,
    /// The request.
    pub op: Op,
    /// Monotonic enqueue time: drives both the flush deadline and the
    /// reported latency.
    pub enqueued: Instant,
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

/// A bounded queue of requests with deadline-aware batch draining.
#[derive(Debug)]
pub struct BatchQueue {
    pending: Mutex<QueueState>,
    arrived: Condvar,
}

impl BatchQueue {
    /// A queue whose backing buffer holds `bound` jobs without
    /// reallocating.
    pub(crate) fn bounded(bound: usize) -> Self {
        BatchQueue {
            pending: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(bound),
                open: true,
            }),
            arrived: Condvar::new(),
        }
    }

    /// Enqueues a job; returns `false` when the queue is closed (the
    /// service is draining). Never blocks and never reallocates: the
    /// caller holds a slot, and slots bound the depth.
    pub(crate) fn push(&self, job: Job) -> bool {
        let mut st = lock_resilient(&self.pending);
        if !st.open {
            return false;
        }
        st.jobs.push_back(job);
        drop(st);
        self.arrived.notify_one();
        true
    }

    /// The current queue depth (diagnostic; racy by nature).
    pub fn depth(&self) -> usize {
        lock_resilient(&self.pending).jobs.len()
    }

    /// Closes the queue: no further pushes are admitted, and workers
    /// return from [`BatchQueue::next_batch`] once the backlog drains.
    pub(crate) fn close(&self) {
        lock_resilient(&self.pending).open = false;
        self.arrived.notify_all();
    }

    /// Blocks for the next batch and drains it into `out` (cleared
    /// first): up to `max_batch` jobs, flushing early once the oldest
    /// queued job has waited `deadline`. Returns `false` when the
    /// queue is closed and fully drained — the worker should exit.
    pub(crate) fn next_batch(
        &self,
        max_batch: usize,
        deadline: Duration,
        out: &mut Vec<Job>,
    ) -> bool {
        out.clear();
        let mut st = lock_resilient(&self.pending);
        loop {
            if st.jobs.len() >= max_batch {
                break;
            }
            match st.jobs.front() {
                None => {
                    if !st.open {
                        return false;
                    }
                    st = self
                        .arrived
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Some(oldest) => {
                    // Saturating deadline math: a job enqueued with an
                    // already-expired deadline (age ≥ deadline, or an
                    // `enqueued` stamp far in the past) must flush
                    // immediately — never underflow into a panic or a
                    // huge wait.
                    let remaining = deadline
                        .checked_sub(oldest.enqueued.elapsed())
                        .unwrap_or(Duration::ZERO);
                    if remaining.is_zero() || !st.open {
                        break;
                    }
                    let (guard, _timeout) = self
                        .arrived
                        .wait_timeout(st, remaining)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    st = guard;
                }
            }
        }
        for _ in 0..max_batch {
            match st.jobs.pop_front() {
                Some(j) => out.push(j),
                None => break,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(slot: u32) -> Job {
        Job {
            slot,
            op: Op::Stats,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn full_batch_flushes_without_waiting_for_the_deadline() {
        let q = BatchQueue::bounded(8);
        for s in 0..4 {
            assert!(q.push(job(s)));
        }
        let mut out = Vec::new();
        let t0 = Instant::now();
        assert!(q.next_batch(4, Duration::from_secs(5), &mut out));
        assert_eq!(out.len(), 4);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "a full batch must not sit out the deadline"
        );
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let q = BatchQueue::bounded(8);
        assert!(q.push(job(0)));
        let mut out = Vec::new();
        assert!(q.next_batch(64, Duration::from_millis(20), &mut out));
        assert_eq!(out.len(), 1, "the deadline must flush a partial batch");
    }

    #[test]
    fn a_deadline_already_in_the_past_flushes_instead_of_panicking() {
        // A job stamped long before `next_batch` runs (e.g. a worker
        // that fell behind by seconds) has age ≫ deadline; the drain
        // must flush it immediately through the saturating path.
        let Some(stale) = Instant::now().checked_sub(Duration::from_secs(10)) else {
            return; // platform clock too young to back-date; nothing to pin
        };
        let q = BatchQueue::bounded(8);
        assert!(q.push(Job {
            slot: 0,
            op: Op::Stats,
            enqueued: stale,
        }));
        let mut out = Vec::new();
        let t0 = Instant::now();
        assert!(q.next_batch(64, Duration::from_millis(1), &mut out));
        assert_eq!(out.len(), 1, "an expired deadline must flush, not wait");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "the expired-deadline flush must be immediate"
        );
        // Zero-duration deadline on a fresh job: same saturating path.
        assert!(q.push(job(1)));
        assert!(q.next_batch(64, Duration::ZERO, &mut out));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BatchQueue::bounded(8);
        assert!(q.push(job(0)));
        q.close();
        assert!(!q.push(job(1)), "a closed queue admits nothing");
        let mut out = Vec::new();
        assert!(q.next_batch(4, Duration::from_secs(5), &mut out));
        assert_eq!(out.len(), 1, "the backlog drains before exit");
        assert!(!q.next_batch(4, Duration::from_secs(5), &mut out));
    }
}
