//! Per-shard health tracking: a lock-free `Healthy → Suspect → Down`
//! state machine driven by consecutive health-relevant failures
//! (worker panics, internal errors, deadline overruns) and healed by
//! consecutive successes or a supervisor respawn.
//!
//! All transitions go through relaxed atomics — the query path reads
//! health with a single `AtomicU8` load and never takes a lock, so
//! R10/R11 stay clean. The streak counters tolerate benign races
//! between workers of the same shard: a lost increment can only delay
//! a transition by one observation, never corrupt the state machine.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Health states of one shard, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShardHealth {
    /// Serving normally; owns its key range.
    Healthy,
    /// Recently failing (or freshly respawned); still serving, but one
    /// more failure streak demotes it to `Down`.
    Suspect,
    /// Quarantined: replicated engines re-route its requests to a live
    /// replica, shared engines answer best-effort inline.
    Down,
}

impl ShardHealth {
    /// Stable wire byte for this state (`MetricsSnapshot` packing).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            ShardHealth::Healthy => 0,
            ShardHealth::Suspect => 1,
            ShardHealth::Down => 2,
        }
    }

    /// Inverse of [`code`](Self::code); unknown bytes clamp to `Down`
    /// (the conservative reading for a health byte we cannot parse).
    #[must_use]
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => ShardHealth::Healthy,
            1 => ShardHealth::Suspect,
            _ => ShardHealth::Down,
        }
    }
}

/// Lock-free health cell for one shard.
#[derive(Debug, Default)]
pub struct HealthCell {
    /// Current [`ShardHealth`] as its `code()` byte.
    state: AtomicU8,
    /// Consecutive health-relevant failures since the last success.
    fail_streak: AtomicU64,
    /// Consecutive successes observed while not `Healthy`.
    ok_streak: AtomicU64,
}

/// Demotion/promotion thresholds for a [`HealthCell`].
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failures that demote `Healthy` to `Suspect`.
    pub suspect_after: u64,
    /// Consecutive failures that demote to `Down`.
    pub down_after: u64,
    /// Consecutive successes that promote one level back up.
    pub recover_after: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_after: 3,
            down_after: 8,
            recover_after: 4,
        }
    }
}

impl HealthCell {
    /// Current state (single relaxed load; safe on the query path).
    #[must_use]
    pub fn get(&self) -> ShardHealth {
        ShardHealth::from_code(self.state.load(Ordering::Relaxed))
    }

    /// Forces a state and clears both streaks. Used by the respawn
    /// supervisor and by scripted failure injection in tests/chaos.
    pub fn set(&self, next: ShardHealth) {
        self.fail_streak.store(0, Ordering::Relaxed);
        self.ok_streak.store(0, Ordering::Relaxed);
        self.state.store(next.code(), Ordering::Relaxed);
    }

    /// Records a health-relevant failure (panic, internal error, or
    /// deadline overrun). Returns the new state if this observation
    /// demoted the shard, `None` if the state is unchanged.
    pub fn record_failure(&self, policy: &HealthPolicy) -> Option<ShardHealth> {
        let streak = self.fail_streak.fetch_add(1, Ordering::Relaxed) + 1;
        self.ok_streak.store(0, Ordering::Relaxed);
        let next = match self.get() {
            ShardHealth::Healthy if streak >= policy.down_after => ShardHealth::Down,
            ShardHealth::Healthy if streak >= policy.suspect_after => ShardHealth::Suspect,
            ShardHealth::Suspect if streak >= policy.down_after => ShardHealth::Down,
            _ => return None,
        };
        self.state.store(next.code(), Ordering::Relaxed);
        Some(next)
    }

    /// Records a successful query. Resets the failure streak; while
    /// demoted, `recover_after` consecutive successes promote the
    /// shard one level (`Down → Suspect → Healthy`). Returns the new
    /// state if this observation promoted the shard.
    pub fn record_success(&self, policy: &HealthPolicy) -> Option<ShardHealth> {
        self.fail_streak.store(0, Ordering::Relaxed);
        let current = self.get();
        if current == ShardHealth::Healthy {
            return None;
        }
        let streak = self.ok_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak < policy.recover_after {
            return None;
        }
        self.ok_streak.store(0, Ordering::Relaxed);
        let next = match current {
            ShardHealth::Down => ShardHealth::Suspect,
            _ => ShardHealth::Healthy,
        };
        self.state.store(next.code(), Ordering::Relaxed);
        Some(next)
    }

    /// Immediate quarantine (caught worker panic with a respawn
    /// snapshot configured). Returns `true` if the shard was not
    /// already `Down`.
    pub fn quarantine(&self) -> bool {
        let was = self.state.swap(ShardHealth::Down.code(), Ordering::Relaxed);
        self.fail_streak.store(0, Ordering::Relaxed);
        self.ok_streak.store(0, Ordering::Relaxed);
        was != ShardHealth::Down.code()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_streaks_walk_healthy_suspect_down() {
        let cell = HealthCell::default();
        let policy = HealthPolicy {
            suspect_after: 2,
            down_after: 4,
            recover_after: 2,
        };
        assert_eq!(cell.record_failure(&policy), None);
        assert_eq!(cell.record_failure(&policy), Some(ShardHealth::Suspect));
        assert_eq!(cell.record_failure(&policy), None);
        assert_eq!(cell.record_failure(&policy), Some(ShardHealth::Down));
        assert_eq!(cell.get(), ShardHealth::Down);
    }

    #[test]
    fn a_success_resets_the_failure_streak() {
        let cell = HealthCell::default();
        let policy = HealthPolicy {
            suspect_after: 2,
            down_after: 4,
            recover_after: 2,
        };
        for _ in 0..8 {
            assert_eq!(cell.record_failure(&policy), None);
            assert_eq!(cell.record_success(&policy), None);
        }
        assert_eq!(cell.get(), ShardHealth::Healthy);
    }

    #[test]
    fn success_streaks_promote_one_level_at_a_time() {
        let cell = HealthCell::default();
        let policy = HealthPolicy {
            suspect_after: 1,
            down_after: 2,
            recover_after: 2,
        };
        cell.set(ShardHealth::Down);
        assert_eq!(cell.record_success(&policy), None);
        assert_eq!(cell.record_success(&policy), Some(ShardHealth::Suspect));
        assert_eq!(cell.record_success(&policy), None);
        assert_eq!(cell.record_success(&policy), Some(ShardHealth::Healthy));
    }

    #[test]
    fn quarantine_is_idempotent_and_reports_the_first_transition() {
        let cell = HealthCell::default();
        assert!(cell.quarantine());
        assert!(!cell.quarantine());
        assert_eq!(cell.get(), ShardHealth::Down);
    }

    #[test]
    fn codes_round_trip_and_unknown_bytes_clamp_to_down() {
        for h in [
            ShardHealth::Healthy,
            ShardHealth::Suspect,
            ShardHealth::Down,
        ] {
            assert_eq!(ShardHealth::from_code(h.code()), h);
        }
        assert_eq!(ShardHealth::from_code(0xff), ShardHealth::Down);
    }
}
