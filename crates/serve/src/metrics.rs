//! Lock-free service metrics: atomic counters plus coarse log-spaced
//! latency histograms.
//!
//! Everything here is written from the query hot path, so the only
//! primitive used is `AtomicU64` with relaxed ordering — no locks, no
//! allocation, no false precision. Latency lands in power-of-two
//! nanosecond buckets; p50/p99 are read as the upper bound of the
//! bucket where the cumulative count crosses the quantile, which is
//! exact to within the 2× bucket width — plenty for overload and
//! regression detection, and immune to coordinated-omission artifacts
//! a fancier reservoir would invite.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` ns (bucket 0 holds `0..1` ns), so the top bucket
/// clamps everything ≥ 2^38 ns ≈ 4.6 minutes.
pub const LATENCY_BUCKETS: usize = 40;

/// A fixed-size log-spaced histogram of nanosecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample (relaxed; never blocks).
    pub fn record_ns(&self, ns: u64) {
        let idx = (64 - u64::leading_zeros(ns) as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts (for windowed
    /// quantiles: snapshot before and after, diff, then
    /// [`quantile_from_counts`]).
    pub fn counts(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The q-quantile (`0.0 ..= 1.0`) over all samples recorded so
    /// far, as the upper bound of the crossing bucket; `0` when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        quantile_from_counts(&self.counts(), q)
    }
}

/// The q-quantile over an explicit bucket-count array (see
/// [`LatencyHistogram::counts`]); `0` when the counts are all zero.
pub fn quantile_from_counts(counts: &[u64; LATENCY_BUCKETS], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return if i == 0 { 1 } else { 1u64 << i };
        }
    }
    1u64 << (LATENCY_BUCKETS - 1)
}

/// Lock-free counters for one [`crate::ShardedNavigator`]. All fields
/// are cumulative since service start; see [`MetricsSnapshot`] for the
/// derived view the `Stats` opcode ships.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests offered to admission (accepted or not).
    pub submitted: AtomicU64,
    /// Requests answered (any outcome, including typed errors).
    pub completed: AtomicU64,
    /// Requests shed with [`crate::ServeError::Overloaded`].
    pub shed: AtomicU64,
    /// Answers outside the contract ([`crate::QueryOutcome::Degraded`]).
    pub degraded: AtomicU64,
    /// Degraded answers computed inline past the admission limit.
    pub inline_served: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
    /// Worker batch flushes.
    pub batches: AtomicU64,
    /// Jobs carried by those flushes (`batched_jobs / batches` = mean
    /// realized batch size).
    pub batched_jobs: AtomicU64,
    /// Requests re-routed away from a `Down` owner shard.
    pub failovers: AtomicU64,
    /// Retry attempts issued under the deadline budget.
    pub retries: AtomicU64,
    /// Transitions of any shard into the `Down` state.
    pub shard_down_events: AtomicU64,
    /// Shards rebuilt from snapshot and re-admitted by the supervisor.
    pub respawns: AtomicU64,
    /// Packed per-shard health bytes: shard `i` (for `i < 8`) occupies
    /// byte `i` as [`crate::ShardHealth::code`]; shards beyond the
    /// eighth are not representable here and are observed via
    /// [`crate::ShardedNavigator::health`] instead.
    pub shard_health: AtomicU64,
    /// Accepted online inserts (dynamic engines; `0` on static).
    pub inserts: AtomicU64,
    /// Accepted online removes (dynamic engines; `0` on static).
    pub removes: AtomicU64,
    /// Epoch rebuilds published by the dynamic engine's builder thread
    /// (reconciled from the engine at snapshot time; `0` on static).
    pub rebuilds: AtomicU64,
    /// Packed per-shard epoch bytes, mirroring
    /// [`ServeMetrics::shard_health`]: byte `i` (for `i < 8`) holds the
    /// low byte of the epoch id shard `i` last answered or observed
    /// with. All-zero on static engines.
    pub shard_epochs: AtomicU64,
    /// Enqueue-to-completion latency of answered requests.
    pub latency: LatencyHistogram,
}

impl ServeMetrics {
    /// Relaxed increment helper.
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add helper.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed decrement helper — used when an admission rejection is
    /// retroactively recovered (a `BestEffort` inline fallback undoes
    /// the `shed` bump its `try_submit` recorded).
    pub(crate) fn unbump(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes shard `index`'s health code into its byte of the
    /// packed [`ServeMetrics::shard_health`] word (lock-free RMW;
    /// shards beyond the eighth are dropped, see the field docs).
    pub(crate) fn set_health_byte(&self, index: usize, code: u8) {
        set_packed_byte(&self.shard_health, index, code);
    }

    /// Publishes shard `index`'s epoch low byte into the packed
    /// [`ServeMetrics::shard_epochs`] word (same layout rules as the
    /// health word).
    pub(crate) fn set_epoch_byte(&self, index: usize, code: u8) {
        set_packed_byte(&self.shard_epochs, index, code);
    }

    /// A coherent-enough point-in-time copy (each field individually
    /// relaxed-loaded; cross-field skew is bounded by in-flight work).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            inline_served: self.inline_served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            p50_ns: self.latency.quantile_ns(0.50),
            p99_ns: self.latency.quantile_ns(0.99),
            failovers: self.failovers.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            shard_down_events: self.shard_down_events.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            shard_health: self.shard_health.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            shard_epochs: self.shard_epochs.load(Ordering::Relaxed),
        }
    }
}

/// Writes `code` into byte `index` of a packed per-shard word
/// (lock-free RMW; indices past the eighth byte are dropped).
fn set_packed_byte(word: &AtomicU64, index: usize, code: u8) {
    if index >= 8 {
        return;
    }
    let shift = 8 * index as u32;
    let mask = 0xffu64 << shift;
    word.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| {
        Some((w & !mask) | (u64::from(code) << shift))
    })
    .unwrap_or(0); // infallible: the closure always returns Some
}

/// The plain-value metrics view shipped by the `Stats` opcode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests offered to admission.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Degraded answers.
    pub degraded: u64,
    /// Inline (past-limit) answers.
    pub inline_served: u64,
    /// Typed-error answers.
    pub errors: u64,
    /// Worker batch flushes.
    pub batches: u64,
    /// Jobs carried by those flushes.
    pub batched_jobs: u64,
    /// Median enqueue-to-completion latency (bucket upper bound).
    pub p50_ns: u64,
    /// 99th-percentile latency (bucket upper bound).
    pub p99_ns: u64,
    /// Requests re-routed away from a `Down` owner shard.
    pub failovers: u64,
    /// Retry attempts issued under the deadline budget.
    pub retries: u64,
    /// Transitions of any shard into the `Down` state.
    pub shard_down_events: u64,
    /// Shards rebuilt from snapshot and re-admitted by the supervisor.
    pub respawns: u64,
    /// Packed per-shard health bytes (shard `i < 8` in byte `i`).
    pub shard_health: u64,
    /// Accepted online inserts (dynamic engines).
    pub inserts: u64,
    /// Accepted online removes (dynamic engines).
    pub removes: u64,
    /// Published epoch rebuilds (dynamic engines).
    pub rebuilds: u64,
    /// Packed per-shard epoch low bytes (shard `i < 8` in byte `i`).
    pub shard_epochs: u64,
}

impl MetricsSnapshot {
    /// Number of `u64` fields a snapshot occupies on the wire. The
    /// jump from 10 to 15 (resilience counters) rode the frame-header
    /// version bump to 2; the jump from 15 to 19 (mutation counters +
    /// the packed epoch word) rode the bump to 3 — so an older peer
    /// sees a typed `ERR_UNSUPPORTED` rather than misparsing the
    /// longer payload.
    pub const WIRE_FIELDS: usize = 19;

    /// The snapshot as its wire field array (order is part of the
    /// protocol; see the golden pin in `tests/wire_roundtrip.rs`).
    pub fn wire_fields(&self) -> [u64; Self::WIRE_FIELDS] {
        [
            self.submitted,
            self.completed,
            self.shed,
            self.degraded,
            self.inline_served,
            self.errors,
            self.batches,
            self.batched_jobs,
            self.p50_ns,
            self.p99_ns,
            self.failovers,
            self.retries,
            self.shard_down_events,
            self.respawns,
            self.shard_health,
            self.inserts,
            self.removes,
            self.rebuilds,
            self.shard_epochs,
        ]
    }

    /// Rebuilds a snapshot from its wire field array.
    pub fn from_wire_fields(f: &[u64; Self::WIRE_FIELDS]) -> Self {
        MetricsSnapshot {
            submitted: f[0],
            completed: f[1],
            shed: f[2],
            degraded: f[3],
            inline_served: f[4],
            errors: f[5],
            batches: f[6],
            batched_jobs: f[7],
            p50_ns: f[8],
            p99_ns: f[9],
            failovers: f[10],
            retries: f[11],
            shard_down_events: f[12],
            respawns: f[13],
            shard_health: f[14],
            inserts: f[15],
            removes: f[16],
            rebuilds: f[17],
            shard_epochs: f[18],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_ns(100); // bucket 7 (64..128) → upper bound 128
        }
        h.record_ns(1_000_000); // bucket 20 → upper bound 2^20
        assert_eq!(h.quantile_ns(0.50), 128);
        assert_eq!(h.quantile_ns(0.99), 128);
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
        assert_eq!(LatencyHistogram::default().quantile_ns(0.5), 0);
    }

    /// The bucket a single sample lands in.
    fn bucket_of(ns: u64) -> usize {
        let h = LatencyHistogram::default();
        h.record_ns(ns);
        let counts = h.counts();
        let idx = counts.iter().position(|&c| c == 1).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 1);
        idx
    }

    #[test]
    fn exact_bucket_boundaries() {
        // Bucket 0 holds only ns = 0; bucket i (i >= 1) holds
        // [2^(i-1), 2^i). Every boundary sample must land on the
        // documented side.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for i in 2..38 {
            assert_eq!(bucket_of((1u64 << i) - 1), i, "2^{i} - 1");
            assert_eq!(bucket_of(1u64 << i), i + 1, "2^{i}");
        }
        // Top-bucket clamp: everything >= 2^38 ns (~4.6 min) lands in
        // bucket 39, including the extremes.
        assert_eq!(bucket_of((1u64 << 38) - 1), 38);
        assert_eq!(bucket_of(1u64 << 38), 39);
        assert_eq!(bucket_of(1u64 << 39), 39);
        assert_eq!(bucket_of(u64::MAX), 39);
    }

    #[test]
    fn quantile_of_boundary_samples() {
        let h = LatencyHistogram::default();
        h.record_ns(0);
        assert_eq!(h.quantile_ns(1.0), 1, "bucket 0 upper bound is 1 ns");
        let h = LatencyHistogram::default();
        h.record_ns(u64::MAX);
        assert_eq!(h.quantile_ns(0.5), 1u64 << 39, "clamped top bucket");
    }

    #[test]
    fn snapshot_round_trips_through_wire_fields() {
        let snap = MetricsSnapshot {
            submitted: 1,
            completed: 2,
            shed: 3,
            degraded: 4,
            inline_served: 5,
            errors: 6,
            batches: 7,
            batched_jobs: 8,
            p50_ns: 9,
            p99_ns: 10,
            failovers: 11,
            retries: 12,
            shard_down_events: 13,
            respawns: 14,
            shard_health: 0x0002_0100,
            inserts: 15,
            removes: 16,
            rebuilds: 17,
            shard_epochs: 0x0000_0302,
        };
        assert_eq!(MetricsSnapshot::from_wire_fields(&snap.wire_fields()), snap);
    }

    #[test]
    fn epoch_bytes_pack_per_shard_like_health() {
        let m = ServeMetrics::default();
        m.set_epoch_byte(0, 3);
        m.set_epoch_byte(2, 7);
        m.set_epoch_byte(8, 9); // beyond the packed window: dropped
        assert_eq!(m.snapshot().shard_epochs, 0x0007_0003);
        assert_eq!(m.snapshot().shard_health, 0, "words are independent");
    }

    #[test]
    fn health_bytes_pack_per_shard_and_ignore_the_ninth() {
        let m = ServeMetrics::default();
        m.set_health_byte(0, 2);
        m.set_health_byte(3, 1);
        m.set_health_byte(8, 2); // beyond the packed window: dropped
        assert_eq!(m.snapshot().shard_health, 0x0100_0002);
        m.set_health_byte(0, 0);
        assert_eq!(m.snapshot().shard_health, 0x0100_0000);
    }
}
