//! Sharded batch query service over the hopspan navigators.
//!
//! The paper's navigation structures answer a query in `O(k)` hops of
//! `O(1)` local work — cheap enough that at production scale the
//! *service layer*, not the query kernel, is the component that has to
//! be engineered. This crate is that layer:
//!
//! * [`ShardedNavigator`] — partitions point-set replicas across N
//!   shards; each shard owns a prebuilt [`Backend`]
//!   ([`hopspan_core::MetricNavigator`], optional
//!   [`hopspan_core::FaultTolerantSpanner`] and
//!   [`hopspan_routing::MetricRoutingScheme`]) plus a dedicated worker
//!   pool. Workers reuse per-worker `_into` scratch buffers, so the
//!   steady-state request cycle performs **zero heap allocations**
//!   (verified by the counting-allocator test in
//!   `tests/serve_allocs.rs`).
//! * [`BatchQueue`] — deadline-aware request batching: a worker flushes
//!   when a batch fills or when the oldest queued request crosses the
//!   time budget, measured on the monotonic clock
//!   ([`std::time::Instant`]; wall-clock time can step backwards and
//!   must never enter deadline math). Queue depth is bounded by the
//!   per-shard slot table; admission beyond it is *typed*:
//!   [`ServeError::Overloaded`] under
//!   [`hopspan_core::DegradationPolicy::Strict`], a best-effort
//!   degraded inline answer under
//!   [`hopspan_core::DegradationPolicy::BestEffort`].
//! * [`wire`] — a versioned, length-prefixed binary protocol (magic,
//!   version, request id, opcode, FNV-1a frame checksum) served by a
//!   [`std::net::TcpListener`] accept loop ([`Server`]) with
//!   shard-affinity dispatch. No dependencies beyond `std`, consistent
//!   with the offline-deps lint R4.
//! * [`ServeMetrics`] — lock-free atomic counters and coarse log-spaced
//!   latency histograms (p50/p99), exposed through the `Stats` opcode.
//!
//! Shard dispatch hashes the query's first endpoint with the
//! workspace's seed-stable FNV-1a (not `DefaultHasher`, whose per-process
//! random keys would make replayed campaigns pick different shards).
//! Cross-process stability is pinned by `tests/serve_determinism.rs` at
//! the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod health;
mod metrics;
pub mod server;
mod shard;
pub mod wire;

pub use batch::BatchQueue;
pub use health::{HealthCell, HealthPolicy, ShardHealth};
pub use metrics::{
    quantile_from_counts, LatencyHistogram, MetricsSnapshot, ServeMetrics, LATENCY_BUCKETS,
};
pub use server::{read_frame, Server, ServerHandle};
pub use shard::{
    retry_backoff, shard_of_point, Backend, BackendParams, BuildError, Pending, ServeConfig,
    ShardedNavigator,
};

use hopspan_core::DegradeReason;

/// Maximum number of fault ids a `RouteAvoiding` request carries
/// inline. Keeping the set inline (no heap) is what lets a request be
/// a fixed-size [`Copy`] value end-to-end.
pub const MAX_WIRE_FAULTS: usize = 8;

/// Maximum dimension of a point an `Insert` request carries inline.
/// Like [`MAX_WIRE_FAULTS`], the inline array keeps [`Op`] a
/// fixed-size [`Copy`] value; coordinates travel as `f64` bit patterns
/// (`u64`) so the request stays `Eq`-comparable and byte-stable.
pub const MAX_WIRE_DIM: usize = 8;

/// A fixed-capacity, inline fault set for `RouteAvoiding` requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSet {
    ids: [u32; MAX_WIRE_FAULTS],
    len: u8,
}

impl FaultSet {
    /// Builds a fault set from a slice of point ids.
    ///
    /// # Errors
    ///
    /// [`ServeError::TooManyFaults`] when more than
    /// [`MAX_WIRE_FAULTS`] ids are supplied.
    pub fn new(ids: &[u32]) -> Result<Self, ServeError> {
        if ids.len() > MAX_WIRE_FAULTS {
            return Err(ServeError::TooManyFaults {
                got: ids.len() as u32,
                limit: MAX_WIRE_FAULTS as u32,
            });
        }
        let mut set = FaultSet {
            ids: [0; MAX_WIRE_FAULTS],
            len: ids.len() as u8,
        };
        set.ids[..ids.len()].copy_from_slice(ids);
        Ok(set)
    }

    /// The empty fault set.
    pub fn empty() -> Self {
        FaultSet {
            ids: [0; MAX_WIRE_FAULTS],
            len: 0,
        }
    }

    /// The fault ids as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.ids[..self.len as usize]
    }
}

/// One service request. Requests are fixed-size [`Copy`] values so the
/// admission path moves them without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A Theorem 1.2 navigation query: the k-hop path from `u` to `v`.
    FindPath {
        /// Source point.
        u: u32,
        /// Target point.
        v: u32,
    },
    /// A Theorem 1.3 compact-routing query: the routed node path.
    Route {
        /// Source point.
        u: u32,
        /// Target point.
        v: u32,
    },
    /// A §6 fault-tolerant query avoiding an inline fault set.
    RouteAvoiding {
        /// Source point.
        u: u32,
        /// Target point.
        v: u32,
        /// Points the path must avoid.
        faults: FaultSet,
    },
    /// A metrics snapshot request ([`MetricsSnapshot`]).
    Stats,
    /// An online point insert (dynamic engines only): `dim` leading
    /// entries of `coords` are the point's coordinates as `f64` bit
    /// patterns. Build with [`Op::insert`].
    Insert {
        /// Coordinates as `f64::to_bits` values; entries past `dim`
        /// are zero.
        coords: [u64; MAX_WIRE_DIM],
        /// Number of meaningful coordinates.
        dim: u8,
    },
    /// An online point remove by external id (dynamic engines only).
    /// The id is tombstoned immediately and answers
    /// [`ServeError::PointRetired`] from then on.
    Remove {
        /// The external id to retire.
        id: u32,
    },
}

impl Op {
    /// Builds an [`Op::Insert`] from a coordinate slice.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the dimension is zero or
    /// exceeds [`MAX_WIRE_DIM`].
    pub fn insert(coords: &[f64]) -> Result<Self, ServeError> {
        if coords.is_empty() || coords.len() > MAX_WIRE_DIM {
            return Err(ServeError::BadRequest);
        }
        let mut bits = [0u64; MAX_WIRE_DIM];
        for (slot, &c) in bits.iter_mut().zip(coords) {
            *slot = c.to_bits();
        }
        Ok(Op::Insert {
            coords: bits,
            dim: coords.len() as u8,
        })
    }

    /// The wire opcode for this request.
    pub fn opcode(&self) -> u8 {
        match self {
            Op::FindPath { .. } => wire::opcode::FIND_PATH,
            Op::Route { .. } => wire::opcode::ROUTE,
            Op::RouteAvoiding { .. } => wire::opcode::ROUTE_AVOIDING,
            Op::Stats => wire::opcode::STATS,
            Op::Insert { .. } => wire::opcode::INSERT,
            Op::Remove { .. } => wire::opcode::REMOVE,
        }
    }

    /// The point whose FNV-1a hash picks the serving shard. `Stats`
    /// has no endpoint and pins to shard 0; so does `Insert`, whose id
    /// does not exist yet (dynamic engines share one mutation ledger
    /// across shards, so any shard is correct).
    pub fn affinity_point(&self) -> u32 {
        match *self {
            Op::FindPath { u, .. } | Op::Route { u, .. } | Op::RouteAvoiding { u, .. } => u,
            Op::Stats | Op::Insert { .. } => 0,
            Op::Remove { id } => id,
        }
    }
}

/// Contract status of a served answer, mirroring
/// [`hopspan_core::FtPathOutcome`] plus the service-level overload
/// escape hatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOutcome {
    /// The answer is in contract (§6 stretch/hop bounds).
    Full,
    /// The answer is best-effort; the contract does not apply.
    Degraded {
        /// Why the contract does not apply.
        reason: DegradeCode,
        /// Realized stretch of the returned path (`1.0` when not
        /// meaningful, e.g. coincident endpoints).
        achieved_stretch: f64,
    },
    /// A stats snapshot (no path payload).
    Stats,
    /// A committed mutation (dynamic engines): the affected external
    /// id and the epoch id current at commit time. For inserts the
    /// point becomes navigable once query replies echo a *later*
    /// epoch; for removes the tombstone is already in effect.
    Mutation {
        /// The inserted or removed external id.
        id: u32,
        /// The epoch id published when the mutation committed.
        epoch: u64,
    },
}

/// Wire-stable degradation reasons. The first three mirror
/// [`hopspan_core::DegradeReason`]; [`DegradeCode::Overload`] marks an
/// answer computed inline on the submitting thread because the shard
/// queue was full under `BestEffort` — the path itself may be in
/// contract, but the service's batching/latency contract was not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeCode {
    /// More faults than the spanner's budget f.
    BudgetExceeded,
    /// No cover tree contains the pair.
    Uncovered,
    /// Every covering tree was wiped out by the fault set.
    NoSurvivingTree,
    /// Served inline past the admission limit.
    Overload,
    /// Served inline because the owning shard is `Down` (shared-mode
    /// best-effort failover; the path itself may be in contract, but
    /// the shard that should have batched it is quarantined).
    ShardDown,
}

impl DegradeCode {
    /// Stable one-byte wire encoding.
    pub fn code(self) -> u8 {
        match self {
            DegradeCode::BudgetExceeded => 1,
            DegradeCode::Uncovered => 2,
            DegradeCode::NoSurvivingTree => 3,
            DegradeCode::Overload => 4,
            DegradeCode::ShardDown => 5,
        }
    }

    /// Decodes a wire byte; `None` for unknown codes.
    pub fn from_code(b: u8) -> Option<Self> {
        match b {
            1 => Some(DegradeCode::BudgetExceeded),
            2 => Some(DegradeCode::Uncovered),
            3 => Some(DegradeCode::NoSurvivingTree),
            4 => Some(DegradeCode::Overload),
            5 => Some(DegradeCode::ShardDown),
            _ => None,
        }
    }
}

impl From<DegradeReason> for DegradeCode {
    fn from(r: DegradeReason) -> Self {
        match r {
            DegradeReason::BudgetExceeded { .. } => DegradeCode::BudgetExceeded,
            DegradeReason::Uncovered => DegradeCode::Uncovered,
            DegradeReason::NoSurvivingTree => DegradeCode::NoSurvivingTree,
            _ => DegradeCode::Uncovered,
        }
    }
}

/// Typed service failures. Every variant is `Copy` with two `u32`
/// detail parameters at most, so errors cross the wire without loss
/// (see [`wire`] status bytes) and slot delivery never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The shard's admission limit was reached and the request was
    /// shed (Strict policy).
    Overloaded {
        /// The shard's queue depth at rejection time.
        depth: u32,
    },
    /// The service is draining; no new requests are admitted.
    ShuttingDown,
    /// The request was structurally invalid before touching a backend.
    BadRequest,
    /// An endpoint is outside the point set or inside the fault set.
    BadEndpoint {
        /// The offending point id.
        point: u32,
    },
    /// No cover tree contains the pair (Strict policy surfaces this
    /// instead of degrading).
    Uncovered {
        /// Source point.
        u: u32,
        /// Target point.
        v: u32,
    },
    /// More faults than the backend tolerates (or than the wire
    /// carries).
    TooManyFaults {
        /// Number supplied.
        got: u32,
        /// The applicable limit.
        limit: u32,
    },
    /// A worker panicked while executing this request; the panic was
    /// contained and the worker survived.
    WorkerPanicked,
    /// The backend serving this shard lacks the structure for the
    /// opcode (e.g. `Route` on a navigator-only backend, or a mutation
    /// on a static backend).
    Unsupported {
        /// The unsupported opcode.
        opcode: u8,
    },
    /// The point was removed from a dynamic engine; its id is
    /// permanently tombstoned and never reused.
    PointRetired {
        /// The retired external id.
        point: u32,
    },
    /// The inserted point coincides with a live point (distance
    /// exactly zero).
    Duplicate {
        /// The colliding live external id.
        of: u32,
    },
    /// An internal invariant failed; the connection stays usable.
    Internal,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ServeError::Overloaded { depth } => {
                write!(f, "shard overloaded (queue depth {depth}); request shed")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::BadRequest => write!(f, "malformed request"),
            ServeError::BadEndpoint { point } => {
                write!(f, "endpoint {point} is out of range or faulty")
            }
            ServeError::Uncovered { u, v } => write!(f, "no cover tree contains ({u}, {v})"),
            ServeError::TooManyFaults { got, limit } => {
                write!(f, "{got} faults exceed the limit {limit}")
            }
            ServeError::WorkerPanicked => write!(f, "worker panicked (contained)"),
            ServeError::Unsupported { opcode } => {
                write!(f, "opcode {opcode} unsupported by this backend")
            }
            ServeError::PointRetired { point } => {
                write!(f, "point {point} was retired from the point set")
            }
            ServeError::Duplicate { of } => {
                write!(f, "point duplicates live point {of}")
            }
            ServeError::Internal => write!(f, "internal service error"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// The wire status byte for this error (see [`wire::status`]).
    pub fn status(self) -> u8 {
        match self {
            ServeError::Overloaded { .. } => wire::status::ERR_OVERLOADED,
            ServeError::ShuttingDown => wire::status::ERR_SHUTTING_DOWN,
            ServeError::BadRequest => wire::status::ERR_BAD_REQUEST,
            ServeError::BadEndpoint { .. } => wire::status::ERR_BAD_ENDPOINT,
            ServeError::Uncovered { .. } => wire::status::ERR_UNCOVERED,
            ServeError::TooManyFaults { .. } => wire::status::ERR_TOO_MANY_FAULTS,
            ServeError::WorkerPanicked => wire::status::ERR_WORKER_PANIC,
            ServeError::Unsupported { .. } => wire::status::ERR_UNSUPPORTED,
            ServeError::PointRetired { .. } => wire::status::ERR_RETIRED,
            ServeError::Duplicate { .. } => wire::status::ERR_DUPLICATE,
            ServeError::Internal => wire::status::ERR_INTERNAL,
        }
    }

    /// The two `u32` detail parameters carried in an error response
    /// payload.
    pub fn wire_params(self) -> (u32, u32) {
        match self {
            ServeError::Overloaded { depth } => (depth, 0),
            ServeError::BadEndpoint { point } => (point, 0),
            ServeError::Uncovered { u, v } => (u, v),
            ServeError::TooManyFaults { got, limit } => (got, limit),
            ServeError::Unsupported { opcode } => (u32::from(opcode), 0),
            ServeError::PointRetired { point } => (point, 0),
            ServeError::Duplicate { of } => (of, 0),
            ServeError::ShuttingDown
            | ServeError::BadRequest
            | ServeError::WorkerPanicked
            | ServeError::Internal => (0, 0),
        }
    }

    /// Rebuilds an error from its wire status byte and detail
    /// parameters; `None` for status bytes that are not errors.
    pub fn from_wire(status: u8, a: u32, b: u32) -> Option<Self> {
        match status {
            wire::status::ERR_OVERLOADED => Some(ServeError::Overloaded { depth: a }),
            wire::status::ERR_SHUTTING_DOWN => Some(ServeError::ShuttingDown),
            wire::status::ERR_BAD_REQUEST => Some(ServeError::BadRequest),
            wire::status::ERR_BAD_ENDPOINT => Some(ServeError::BadEndpoint { point: a }),
            wire::status::ERR_UNCOVERED => Some(ServeError::Uncovered { u: a, v: b }),
            wire::status::ERR_TOO_MANY_FAULTS => {
                Some(ServeError::TooManyFaults { got: a, limit: b })
            }
            wire::status::ERR_WORKER_PANIC => Some(ServeError::WorkerPanicked),
            wire::status::ERR_UNSUPPORTED => Some(ServeError::Unsupported { opcode: a as u8 }),
            wire::status::ERR_RETIRED => Some(ServeError::PointRetired { point: a }),
            wire::status::ERR_DUPLICATE => Some(ServeError::Duplicate { of: a }),
            wire::status::ERR_INTERNAL => Some(ServeError::Internal),
            _ => None,
        }
    }
}
