//! The TCP front: a `std::net::TcpListener` accept loop over the
//! [`wire`] protocol, dispatching into a [`ShardedNavigator`].
//!
//! One thread per connection (connections are long-lived query pipes,
//! not ephemeral HTTP hits; the shard worker pools bound actual query
//! concurrency). Each connection thread owns four reused buffers —
//! frame-in, path, payload scratch and frame-out — so a pipelined
//! client costs zero steady-state allocations on the server side.
//!
//! ## Failure semantics
//!
//! Every inbound frame gets exactly one response frame, always typed:
//!
//! * decodes + executes → an answer or a [`ServeError`] status;
//! * checksum-valid but unknown opcode / bad payload → the error
//!   status, connection stays open (the frame boundary was sound);
//! * version skew with the frame otherwise intact → a typed
//!   [`wire::status::ERR_UNSUPPORTED`] response and the connection
//!   stays open — the peer is a well-formed client on another protocol
//!   revision, not a corrupt stream;
//! * bad magic, bad checksum, truncation, oversized length → a
//!   [`wire::status::ERR_WIRE`] frame, then the connection closes (the
//!   byte stream can no longer be trusted);
//! * a panic while serving a connection is caught by the connection
//!   thread; a best-effort `ERR_INTERNAL` frame is sent before close.
//!
//! "Never a hang": reads carry a socket timeout, so a half-dead peer
//! cannot pin a connection thread past shutdown.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::shard::ShardedNavigator;
use crate::wire::{self, WireError};
use crate::{Op, QueryOutcome, ServeError};

/// How long a connection read blocks before re-checking the shutdown
/// flag. Also the bound on how long shutdown waits for a quiet
/// connection.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Reads one length-prefixed frame body into `body` (cleared and
/// resized, capacity reused). Returns `Ok(false)` on clean EOF before
/// a prefix byte.
///
/// The length prefix is validated against [`wire::MAX_FRAME`] *before*
/// `body` is resized, so a hostile prefix (up to `u32::MAX`) can never
/// drive an allocation — the ordering is pinned by unit tests below.
///
/// Generic over `Read` so the check can be exercised against in-memory
/// cursors, not just live sockets.
///
/// # Errors
///
/// * `Err(ReadFrameError::Io)` on stream errors (including timeouts);
/// * `Err(ReadFrameError::Oversized)` when the prefix exceeds
///   [`wire::MAX_FRAME`] — the stream is unrecoverable after this.
pub fn read_frame<R: Read>(stream: &mut R, body: &mut Vec<u8>) -> Result<bool, ReadFrameError> {
    let mut prefix = [0u8; 4];
    match stream.read(&mut prefix) {
        Ok(0) => return Ok(false),
        Ok(n) if n < 4 => {
            stream
                .read_exact(&mut prefix[n..])
                .map_err(ReadFrameError::Io)?;
        }
        Ok(_) => {}
        Err(e) => return Err(ReadFrameError::Io(e)),
    }
    let len = u32::from_le_bytes(prefix);
    if len > wire::MAX_FRAME {
        return Err(ReadFrameError::Oversized { len });
    }
    let body_len = usize::try_from(len).map_err(|_| ReadFrameError::Oversized { len })?;
    body.clear();
    body.resize(body_len, 0);
    stream.read_exact(body).map_err(ReadFrameError::Io)?;
    Ok(true)
}

/// Failure modes of [`read_frame`].
#[derive(Debug)]
pub enum ReadFrameError {
    /// The socket failed (or timed out) mid-frame.
    Io(std::io::Error),
    /// The length prefix exceeds [`wire::MAX_FRAME`].
    Oversized {
        /// The claimed body length.
        len: u32,
    },
}

impl std::fmt::Display for ReadFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadFrameError::Io(e) => write!(f, "socket failed mid-frame: {e}"),
            ReadFrameError::Oversized { len } => {
                write!(
                    f,
                    "length prefix {len} exceeds MAX_FRAME {}",
                    wire::MAX_FRAME
                )
            }
        }
    }
}

impl std::error::Error for ReadFrameError {}

/// A handle to a running server: its bound address plus shutdown
/// control. Dropping the handle shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes the listener and joins every thread.
    /// Connection threads exit at their next read timeout at the
    /// latest.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; if the
        // connect fails the listener is already gone, which is fine.
        let _poke = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _join = t.join();
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut guard = self
                .conn_threads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for t in drained {
            let _join = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// The TCP server: binds, accepts, and serves the wire protocol over
/// a [`ShardedNavigator`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the accept
    /// loop.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn start<A: ToSocketAddrs>(
        engine: Arc<ShardedNavigator>,
        addr: A,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("hopspan-serve-accept".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else {
                        continue;
                    };
                    let engine = Arc::clone(&engine);
                    let conn_stop = Arc::clone(&accept_stop);
                    let spawned = std::thread::Builder::new()
                        .name("hopspan-serve-conn".to_string())
                        .spawn(move || serve_connection(&engine, stream, &conn_stop));
                    if let Ok(handle) = spawned {
                        accept_conns
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(handle);
                    }
                }
            })?;

        Ok(ServerHandle {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }
}

/// Serves one connection until EOF, unrecoverable wire corruption,
/// shutdown, or idle timeout. Panics inside are contained here.
fn serve_connection(engine: &ShardedNavigator, mut stream: TcpStream, stop: &AtomicBool) {
    // Timeout-setting failure means the socket is already dead;
    // nothing to serve.
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        connection_loop(engine, &mut stream, stop)
    }));
    if outcome.is_err() {
        // Contained connection-thread panic: tell the peer before
        // closing rather than vanishing.
        let mut frame = Vec::new();
        wire::encode_error_response_into(0, wire::opcode::STATS, ServeError::Internal, &mut frame);
        let _best_effort = stream.write_all(&frame);
    }
    let _close = stream.shutdown(Shutdown::Both);
}

fn connection_loop(engine: &ShardedNavigator, stream: &mut TcpStream, stop: &AtomicBool) {
    let mut body: Vec<u8> = Vec::with_capacity(256);
    let mut path: Vec<usize> = Vec::with_capacity(64);
    let mut frame_out: Vec<u8> = Vec::with_capacity(512);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(stream, &mut body) {
            Ok(true) => {}
            Ok(false) => return, // clean EOF
            Err(ReadFrameError::Io(e))
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                // Idle tick: loop to re-check the shutdown flag. A
                // timeout *mid-frame* desynchronizes the stream, but
                // read_frame only returns WouldBlock from the first
                // byte of the prefix; partial reads use read_exact,
                // whose timeout surfaces as UnexpectedEof on some
                // platforms and closes the connection below.
                continue;
            }
            Err(ReadFrameError::Io(_)) => return,
            Err(ReadFrameError::Oversized { .. }) => {
                // The peer's framing is hostile or broken; answer
                // typed and close.
                frame_out.clear();
                wire::encode_wire_error_into(0, &mut frame_out);
                let _best_effort = stream.write_all(&frame_out);
                return;
            }
        }
        frame_out.clear();
        let keep_open = answer_frame(engine, &body, &mut path, &mut frame_out);
        if stream.write_all(&frame_out).is_err() {
            return;
        }
        if !keep_open {
            return;
        }
    }
}

/// Builds the response frame for one inbound body. Returns whether the
/// connection can keep going (`false` after framing-level corruption).
fn answer_frame(
    engine: &ShardedNavigator,
    body: &[u8],
    path: &mut Vec<usize>,
    frame_out: &mut Vec<u8>,
) -> bool {
    let view = match wire::decode_frame(body) {
        Ok(v) => v,
        Err(WireError::BadVersion { .. }) => {
            // Version skew is a *protocol* mismatch, not stream
            // corruption: the frame's length, magic and checksum all
            // held, so the peer is a well-formed client speaking an
            // older (or newer) revision. Answer with the typed
            // `ERR_UNSUPPORTED` status and keep the connection open so
            // the client can log a clean "upgrade me" error instead of
            // a dropped socket. The request id sits at a
            // version-invariant offset, so the reply still correlates.
            let request_id = wire::request_id_best_effort(body);
            let opcode = body.get(6).copied().unwrap_or(wire::opcode::STATS);
            wire::encode_error_response_into(
                request_id,
                opcode,
                ServeError::Unsupported { opcode },
                frame_out,
            );
            return true;
        }
        Err(_) => {
            // Magic/checksum/truncation failure: the stream can't be
            // trusted beyond this frame.
            wire::encode_wire_error_into(0, frame_out);
            return false;
        }
    };
    // Snapshot opcodes are answered at the dispatch layer, like
    // `Stats`: they touch the filesystem and the whole engine, not a
    // single shard queue, and they are not part of the [`Op`] request
    // enum (which models per-point queries).
    if view.opcode == wire::opcode::SNAPSHOT || view.opcode == wire::opcode::LOAD_SNAPSHOT {
        if !view.payload.is_empty() {
            wire::encode_error_response_into(
                view.request_id,
                view.opcode,
                ServeError::BadRequest,
                frame_out,
            );
            return true;
        }
        let result = if view.opcode == wire::opcode::SNAPSHOT {
            engine.write_snapshot()
        } else {
            engine.load_snapshot_verify()
        };
        match result {
            Ok(digest) => wire::encode_snapshot_response_into(
                view.request_id,
                view.opcode,
                digest.bytes,
                digest.checksum,
                frame_out,
            ),
            Err(e) => {
                wire::encode_error_response_into(view.request_id, view.opcode, e, frame_out);
            }
        }
        return true;
    }
    let op = match wire::decode_request(&view) {
        Ok(op) => op,
        Err(WireError::UnknownOpcode { got }) => {
            // Frame boundary was sound; answer typed and keep going.
            wire::encode_error_response_into(
                view.request_id,
                got,
                ServeError::Unsupported { opcode: got },
                frame_out,
            );
            return true;
        }
        Err(_) => {
            wire::encode_error_response_into(
                view.request_id,
                view.opcode,
                ServeError::BadRequest,
                frame_out,
            );
            return true;
        }
    };
    match op {
        Op::Stats => {
            // Stats is answered at the dispatch layer: it reads
            // lock-free counters, so routing it through a shard queue
            // would only add latency noise to the numbers it reports.
            let snap = engine.snapshot();
            wire::encode_stats_response_into(view.request_id, &snap, frame_out);
        }
        _ => match engine.call_with_epoch(op, path) {
            Ok((outcome @ (QueryOutcome::Full | QueryOutcome::Degraded { .. }), epoch)) => {
                wire::encode_path_response_into(
                    view.request_id,
                    view.opcode,
                    outcome,
                    epoch,
                    path,
                    frame_out,
                );
            }
            Ok((QueryOutcome::Mutation { id, epoch }, _)) => {
                wire::encode_mutation_response_into(
                    view.request_id,
                    view.opcode,
                    id,
                    epoch,
                    frame_out,
                );
            }
            Ok((QueryOutcome::Stats, _)) => {
                let snap = engine.snapshot();
                wire::encode_stats_response_into(view.request_id, &snap, frame_out);
            }
            Err(e) => {
                wire::encode_error_response_into(view.request_id, view.opcode, e, frame_out);
            }
        },
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that yields at most `chunk` bytes per `read`, to drive
    /// the partial-prefix path.
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn read_frame_round_trips_a_small_frame() {
        let mut data = 3u32.to_le_bytes().to_vec();
        data.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        let mut cur = Cursor::new(data);
        let mut body = Vec::new();
        assert!(read_frame(&mut cur, &mut body).unwrap());
        assert_eq!(body, [0xAA, 0xBB, 0xCC]);
        // Next read sees clean EOF.
        assert!(!read_frame(&mut cur, &mut body).unwrap());
    }

    #[test]
    fn read_frame_reassembles_a_split_prefix() {
        let mut data = 2u32.to_le_bytes().to_vec();
        data.extend_from_slice(&[1, 2]);
        let mut r = Chunked {
            data,
            pos: 0,
            chunk: 1,
        };
        let mut body = Vec::new();
        assert!(read_frame(&mut r, &mut body).unwrap());
        assert_eq!(body, [1, 2]);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_the_buffer_grows() {
        // A hostile length prefix must be rejected *before* `body` is
        // resized: the buffer's capacity stays untouched, proving no
        // attacker-sized allocation happened.
        for hostile in [wire::MAX_FRAME + 1, u32::MAX] {
            let mut cur = Cursor::new(hostile.to_le_bytes().to_vec());
            let mut body = Vec::new();
            match read_frame(&mut cur, &mut body) {
                Err(ReadFrameError::Oversized { len }) => assert_eq!(len, hostile),
                other => panic!("expected Oversized, got {other:?}"),
            }
            assert_eq!(body.capacity(), 0, "rejection must precede the resize");
        }
    }

    #[test]
    fn max_frame_exactly_is_accepted() {
        let mut data = wire::MAX_FRAME.to_le_bytes().to_vec();
        data.extend(std::iter::repeat_n(0u8, wire::MAX_FRAME as usize));
        let mut cur = Cursor::new(data);
        let mut body = Vec::new();
        assert!(read_frame(&mut cur, &mut body).unwrap());
        assert_eq!(body.len(), wire::MAX_FRAME as usize);
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let mut data = 8u32.to_le_bytes().to_vec();
        data.extend_from_slice(&[1, 2, 3]); // 3 of the promised 8
        let mut cur = Cursor::new(data);
        let mut body = Vec::new();
        assert!(matches!(
            read_frame(&mut cur, &mut body),
            Err(ReadFrameError::Io(_))
        ));
    }
}
