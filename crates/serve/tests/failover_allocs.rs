//! Zero-allocation guarantee of the *failover* path.
//!
//! The resilience layer must not tax the hot path: health checks are
//! relaxed atomic loads, failover re-routing is a stack FNV-1a hash
//! plus an index scan, and the backoff schedule is a stack PCG-32
//! draw. This installs the same process-global counting allocator as
//! `serve_allocs.rs` and proves that serving with a shard `Down` —
//! every query owned by it re-routed to a replica — performs zero
//! heap allocations per query once warm. One test per file so no
//! concurrent libtest thread can pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hopspan_metric::gen;
use hopspan_serve::{retry_backoff, BackendParams, Op, ServeConfig, ShardHealth, ShardedNavigator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Allocation events (alloc + realloc) across *all* threads.
static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting allocation events globally.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// increment and cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N: usize = 64;

/// One sweep over every point — queries owned by the Down shard ride
/// the failover re-route, the rest take the ordinary path.
fn sweep(engine: &ShardedNavigator, out: &mut Vec<usize>) {
    for u in 0..N as u32 {
        let v = (u + 13) % N as u32;
        engine
            .call(Op::FindPath { u, v }, out)
            .expect("failover serves");
        engine.call(Op::Route { u, v }, out).expect("route serves");
    }
}

#[test]
fn failover_serving_does_not_allocate() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x00A1_10C6);
    let points = gen::uniform_points(N, 2, &mut rng);
    let engine = ShardedNavigator::replicated(
        &points,
        &BackendParams::default(),
        ServeConfig {
            shards: 4,
            workers_per_shard: 1,
            max_batch: 8,
            batch_deadline: Duration::from_micros(50),
            queue_depth: 8,
            ..ServeConfig::default()
        },
    )
    .expect("engine starts");

    // Scripted outage: shard 1 is Down for the whole test. It receives
    // no jobs (its traffic re-routes), so no success streak re-admits
    // it behind our back — the failover path stays exercised.
    engine.set_health(1, ShardHealth::Down);

    let mut out = Vec::new();
    // Warm-up: grow every reusable buffer to steady state, on both the
    // ordinary and the re-routed path.
    for _ in 0..3 {
        sweep(&engine, &mut out);
    }
    assert_eq!(
        engine.health(1),
        ShardHealth::Down,
        "the outage must persist"
    );
    assert!(
        engine.snapshot().failovers > 0,
        "the sweep must exercise failover"
    );

    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    sweep(&engine, &mut out);
    sweep(&engine, &mut out);
    // The deterministic backoff schedule is pure stack work too.
    let mut acc = Duration::ZERO;
    for attempt in 1..=8 {
        acc += retry_backoff(0x5eed_0b0f, 0xDEAD_BEEF, attempt);
    }
    let events = ALLOC_EVENTS.load(Ordering::Relaxed) - before;
    assert_eq!(
        events, 0,
        "failover-path serving must not allocate anywhere in the process"
    );
    assert!(acc > Duration::ZERO, "backoff draws must be real");

    // Sanity: the counter is alive — the allocating inline fallback
    // (fresh scratch) must register.
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    engine
        .call_inline(Op::FindPath { u: 3, v: 40 }, &mut out)
        .expect("inline call serves");
    let events = ALLOC_EVENTS.load(Ordering::Relaxed) - before;
    assert!(events > 0, "counter failed to observe inline-call allocs");
}
