//! Self-healing behavior end to end: replicated failover answers every
//! query while shards are down, shared-mode failover degrades typed,
//! deadline-budgeted retries ride out injected panics, slow shards are
//! demoted by the overrun limit, and quarantined shards respawn from
//! the boot snapshot — or stay down when the snapshot is corrupt.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hopspan_core::DegradationPolicy;
use hopspan_metric::gen;
use hopspan_serve::{
    retry_backoff, shard_of_point, Backend, BackendParams, DegradeCode, Op, QueryOutcome,
    ServeConfig, ServeError, ShardHealth, ShardedNavigator,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: usize = 64;

fn params() -> BackendParams {
    BackendParams {
        seed: 0x5E4E_0001,
        tree_budget: 8,
        k: 3,
        eps: 0.5,
        f: 1,
        build_router: true,
        build_ft: true,
    }
}

fn points() -> hopspan_metric::EuclideanSpace {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E4E_0002);
    gen::uniform_points(N, 2, &mut rng)
}

/// A unique temp file for one test's snapshot.
fn temp_snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "hopspan-resilience-{tag}-{}.hsnp",
        std::process::id()
    ))
}

/// Polls `cond` for up to five seconds — respawn runs on the
/// supervisor thread, so re-admission is asynchronous.
fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn replicated_failover_reroutes_down_shards_and_answers_everything() {
    let engine = ShardedNavigator::replicated(
        &points(),
        &params(),
        ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        },
    )
    .expect("replicated engine starts");

    // Take one shard down by script; its requests must re-route to a
    // healthy replica, deterministically, and every query still
    // answers `Full` — replicas are bit-identical.
    engine.set_health(1, ShardHealth::Down);
    assert_eq!(engine.health(1), ShardHealth::Down);

    let mut out = Vec::new();
    let mut rerouted = 0u64;
    for u in 0..N as u32 {
        let op = Op::FindPath {
            u,
            v: (u + 11) % N as u32,
        };
        let owner = engine.shard_for(&op);
        assert_eq!(owner, shard_of_point(u, 4));
        let target = engine.dispatch_for(&op);
        if owner == 1 {
            assert_ne!(target, 1, "a Down shard's requests must fail over");
            rerouted += 1;
            // The choice is a pure function of the health config.
            assert_eq!(engine.dispatch_for(&op), target, "failover must be stable");
        } else {
            assert_eq!(target, owner, "healthy owners keep their requests");
        }
        let outcome = engine.call(op, &mut out).expect("failover answers");
        assert_eq!(outcome, QueryOutcome::Full);
    }
    assert!(rerouted > 0, "the point set must hit the down shard");
    let snap = engine.snapshot();
    assert_eq!(snap.failovers, rerouted);
    assert_eq!(snap.shard_down_events, 1);
    assert_eq!(snap.shard_health & 0xff00, 0x0200, "health byte 1 is Down");

    // Two of four down: still every query answers.
    engine.set_health(3, ShardHealth::Down);
    for u in 0..N as u32 {
        let op = Op::Route {
            u,
            v: (u + 7) % N as u32,
        };
        let target = engine.dispatch_for(&op);
        assert!(target != 1 && target != 3, "no dispatch to a Down shard");
        let outcome = engine
            .call(op, &mut out)
            .expect("two-down failover answers");
        assert_eq!(outcome, QueryOutcome::Full);
    }

    // Recovery: re-admitted shards own their requests again.
    engine.set_health(1, ShardHealth::Healthy);
    engine.set_health(3, ShardHealth::Healthy);
    for u in 0..N as u32 {
        let op = Op::FindPath {
            u,
            v: (u + 1) % N as u32,
        };
        assert_eq!(engine.dispatch_for(&op), engine.shard_for(&op));
    }
}

#[test]
fn all_shards_down_still_answers_through_the_owner() {
    let engine = ShardedNavigator::replicated(
        &points(),
        &params(),
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    )
    .expect("replicated engine starts");
    engine.set_health(0, ShardHealth::Down);
    engine.set_health(1, ShardHealth::Down);
    // Zero healthy shards: dispatch falls back to the owner (checked
    // before any call — successful answers start re-admitting shards
    // through their ok-streaks, which is the self-healing working).
    for u in (0..N as u32).step_by(9) {
        let op = Op::FindPath {
            u,
            v: (u + 3) % N as u32,
        };
        assert_eq!(engine.dispatch_for(&op), engine.shard_for(&op));
    }
    // The owners' workers still run — availability degrades, it never
    // hits zero. 64 successes split across two shards clears the
    // recovery streak (default 4) on both.
    let mut out = Vec::new();
    for u in 0..N as u32 {
        let op = Op::FindPath {
            u,
            v: (u + 3) % N as u32,
        };
        let outcome = engine.call(op, &mut out).expect("owner still serves");
        assert_eq!(outcome, QueryOutcome::Full);
    }
    // And those successes promote shards back toward Healthy. (Not
    // necessarily both: the moment one shard recovers, failover drains
    // the other's traffic — and with it the success streak it would
    // need. Re-admitting a fully starved shard is the supervisor's
    // job, exercised in the respawn test below.)
    assert!(
        (0..2).any(|i| engine.health(i) != ShardHealth::Down),
        "a streak of good answers must begin re-admission"
    );
}

#[test]
fn shared_mode_best_effort_answers_down_shards_inline_as_shard_down() {
    let backend = Arc::new(Backend::build(&points(), &params()).expect("backend builds"));
    let engine = ShardedNavigator::shared(
        Arc::clone(&backend),
        ServeConfig {
            shards: 2,
            policy: DegradationPolicy::BestEffort,
            ..ServeConfig::default()
        },
    )
    .expect("shared engine starts");

    // Find a point owned by shard 0 and one owned by shard 1.
    let owned_by = |s: usize| (0..N as u32).find(|&u| shard_of_point(u, 2) == s);
    let u0 = owned_by(0).expect("some point hashes to shard 0");
    let u1 = owned_by(1).expect("some point hashes to shard 1");

    engine.set_health(0, ShardHealth::Down);
    let mut out = Vec::new();
    // Shared mode has no replica to re-route to: the Down owner's
    // requests are answered inline, typed as Degraded{ShardDown}.
    match engine
        .call(Op::FindPath { u: u0, v: u1 }, &mut out)
        .expect("inline failover answers")
    {
        QueryOutcome::Degraded {
            reason: DegradeCode::ShardDown,
            achieved_stretch,
        } => {
            assert!(achieved_stretch >= 1.0);
            assert_eq!(out.first(), Some(&(u0 as usize)));
        }
        other => panic!("expected Degraded{{ShardDown}}, got {other:?}"),
    }
    // The healthy shard's requests still go through the queue as Full.
    let outcome = engine
        .call(Op::FindPath { u: u1, v: u0 }, &mut out)
        .expect("healthy shard serves");
    assert_eq!(outcome, QueryOutcome::Full);
    assert!(engine.snapshot().inline_served > 0);
}

#[test]
fn budgeted_retries_ride_out_injected_panics() {
    let engine = ShardedNavigator::replicated(
        &points(),
        &params(),
        ServeConfig {
            shards: 1,
            // Every 2nd job panics: the first attempt of each call
            // below alternates panic/success, so one retry always
            // lands on a good job.
            chaos_panic_period: Some(2),
            retry_budget: Duration::from_millis(250),
            ..ServeConfig::default()
        },
    )
    .expect("replicated engine starts");
    let mut out = Vec::new();
    for i in 0..10u32 {
        let outcome = engine
            .call(Op::FindPath { u: i, v: i + 20 }, &mut out)
            .expect("the retry budget must absorb every injected panic");
        assert_eq!(outcome, QueryOutcome::Full);
    }
    let snap = engine.snapshot();
    assert!(
        snap.retries >= 5,
        "half the first attempts panic; got {}",
        snap.retries
    );

    // With a zero budget (the default) the same fault surfaces typed.
    let no_retry = ShardedNavigator::replicated(
        &points(),
        &params(),
        ServeConfig {
            shards: 1,
            chaos_panic_period: Some(1),
            ..ServeConfig::default()
        },
    )
    .expect("replicated engine starts");
    assert_eq!(
        no_retry.call(Op::FindPath { u: 0, v: 1 }, &mut out),
        Err(ServeError::WorkerPanicked),
        "a zero retry budget disables retries"
    );
    assert_eq!(no_retry.snapshot().retries, 0);
}

#[test]
fn retry_backoff_is_deterministic_and_budget_shaped() {
    for key in [0u64, 0x3 << 32 | 7, u64::MAX] {
        for attempt in 1..=12u32 {
            let a = retry_backoff(0x5eed_0b0f, key, attempt);
            let b = retry_backoff(0x5eed_0b0f, key, attempt);
            assert_eq!(a, b, "same (seed, key, attempt) must sleep identically");
            let base = Duration::from_micros(1 << attempt.min(10));
            assert!(
                a >= base && a <= base * 2,
                "attempt {attempt}: {a:?} out of [base, 2*base]"
            );
        }
        // The seed must matter: two seeds cannot share the whole
        // 12-attempt schedule (single attempts may collide — the
        // attempt-1 jitter range is only three values wide).
        let schedule = |seed: u64| -> Vec<Duration> {
            (1..=12).map(|a| retry_backoff(seed, key, a)).collect()
        };
        assert_ne!(
            schedule(0x5eed_0b0f),
            schedule(!0x5eed_0b0f),
            "the seed must matter"
        );
    }
}

#[test]
fn a_slow_shard_is_demoted_by_the_overrun_limit() {
    let engine = ShardedNavigator::replicated(
        &points(),
        &params(),
        ServeConfig {
            shards: 2,
            chaos_slow_shard: Some((0, Duration::from_millis(20))),
            overrun_limit: Some(Duration::from_millis(5)),
            ..ServeConfig::default()
        },
    )
    .expect("replicated engine starts");
    let u = (0..N as u32)
        .find(|&u| shard_of_point(u, 2) == 0)
        .expect("some point hashes to shard 0");
    let mut out = Vec::new();
    // down_after (default 8) overruns demote the wedged shard.
    for _ in 0..12 {
        if engine.health(0) == ShardHealth::Down {
            break;
        }
        let _answer = engine.call(
            Op::FindPath {
                u,
                v: (u + 1) % N as u32,
            },
            &mut out,
        );
    }
    assert_eq!(
        engine.health(0),
        ShardHealth::Down,
        "overruns must demote the slow shard"
    );
    assert!(engine.snapshot().shard_down_events >= 1);
    // Its requests now fail over to the fast replica.
    let op = Op::FindPath {
        u,
        v: (u + 2) % N as u32,
    };
    assert_eq!(engine.dispatch_for(&op), 1);
}

#[test]
fn a_quarantined_shard_respawns_from_the_snapshot_and_recovers() {
    // Boot from a snapshot so the fidelity witness is armed: the very
    // first injected panic quarantines the shard and the supervisor
    // rebuilds it from disk.
    let seed_engine = ShardedNavigator::replicated(
        &points(),
        &params(),
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    )
    .expect("seed engine starts");
    let path = temp_snapshot_path("respawn");
    seed_engine.set_snapshot_path(&path);
    seed_engine.write_snapshot().expect("snapshot writes");
    drop(seed_engine);

    let engine = ShardedNavigator::replicated_from_snapshot(
        &path,
        ServeConfig {
            shards: 1,
            chaos_panic_period: Some(4),
            ..ServeConfig::default()
        },
    )
    .expect("snapshot boot");
    let mut out = Vec::new();
    let mut saw_panic = false;
    for i in 0..8u32 {
        match engine.call(Op::FindPath { u: i, v: i + 9 }, &mut out) {
            Ok(QueryOutcome::Full) => {}
            Err(ServeError::WorkerPanicked) => saw_panic = true,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(saw_panic, "chaos_panic_period must fire within 8 jobs");
    // The supervisor re-admits the shard: Down → snapshot rebuild →
    // Suspect → probe → Healthy, and the respawn counter ticks.
    assert!(
        wait_for(|| engine.snapshot().respawns >= 1 && engine.health(0) == ShardHealth::Healthy),
        "the shard must be re-admitted to Healthy; health={:?}, respawns={}",
        engine.health(0),
        engine.snapshot().respawns,
    );
    assert!(engine.snapshot().shard_down_events >= 1);
    // And it serves correct answers again.
    let outcome = engine
        .call(Op::FindPath { u: 2, v: 33 }, &mut out)
        .expect("respawned shard serves");
    assert_eq!(outcome, QueryOutcome::Full);
    let _cleanup = std::fs::remove_file(&path);
}

#[test]
fn a_corrupt_snapshot_is_never_readmitted() {
    let seed_engine = ShardedNavigator::replicated(
        &points(),
        &params(),
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    )
    .expect("seed engine starts");
    let path = temp_snapshot_path("corrupt");
    seed_engine.set_snapshot_path(&path);
    seed_engine.write_snapshot().expect("snapshot writes");
    drop(seed_engine);

    let engine = ShardedNavigator::replicated_from_snapshot(
        &path,
        ServeConfig {
            shards: 2,
            chaos_panic_period: Some(6),
            ..ServeConfig::default()
        },
    )
    .expect("snapshot boot");

    // Corrupt the snapshot on disk *after* boot: the next quarantine's
    // respawn reads garbage, fails the witness check and must leave
    // the shard Down rather than re-admit a divergent backend.
    let mut bytes = std::fs::read(&path).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("snapshot corruptible");

    let mut out = Vec::new();
    let mut panicked = 0u32;
    for i in 0..24u32 {
        if let Err(ServeError::WorkerPanicked) = engine.call(
            Op::FindPath {
                u: i % N as u32,
                v: (i + 5) % N as u32,
            },
            &mut out,
        ) {
            panicked += 1;
        }
    }
    assert!(panicked >= 1, "chaos injection must fire");
    assert!(
        wait_for(|| engine.snapshot().shard_down_events >= 1),
        "a panic must quarantine its shard"
    );
    // Give the supervisor time to attempt (and refuse) the respawn.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        engine.snapshot().respawns,
        0,
        "a corrupt snapshot must never re-admit"
    );
    assert!(
        (0..2).any(|i| engine.health(i) == ShardHealth::Down),
        "the quarantined shard stays Down"
    );
    // The service survives: healthy-or-owner dispatch still answers.
    for i in 0..8u32 {
        let op = Op::FindPath { u: i, v: i + 40 };
        match engine.call(op, &mut out) {
            Ok(QueryOutcome::Full) | Err(ServeError::WorkerPanicked) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let _cleanup = std::fs::remove_file(&path);
}

#[test]
fn client_typed_errors_do_not_count_against_health() {
    let engine = ShardedNavigator::replicated(
        &points(),
        &params(),
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    )
    .expect("replicated engine starts");
    let mut out = Vec::new();
    // A storm of bad requests (client's fault) must not demote the
    // shard: the worker answering them typed is proof it is alive.
    for _ in 0..32 {
        assert_eq!(
            engine.call(Op::FindPath { u: 1, v: 9999 }, &mut out),
            Err(ServeError::BadEndpoint { point: 9999 })
        );
    }
    assert_eq!(engine.health(0), ShardHealth::Healthy);
    assert_eq!(engine.snapshot().shard_down_events, 0);
}
