//! End-to-end service behavior: batched answers match direct kernel
//! answers bit-for-bit, admission control sheds typed under `Strict`
//! and degrades under `BestEffort`, worker panics are contained, and
//! the TCP front serves the same answers over loopback.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hopspan_core::DegradationPolicy;
use hopspan_metric::gen;
use hopspan_serve::wire::{self, Response};
use hopspan_serve::{
    shard_of_point, Backend, BackendParams, DegradeCode, FaultSet, Op, QueryOutcome, ServeConfig,
    ServeError, Server, ShardedNavigator,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: usize = 64;

fn params() -> BackendParams {
    BackendParams {
        seed: 0x5E4E_0001,
        tree_budget: 8,
        k: 3,
        eps: 0.5,
        f: 1,
        build_router: true,
        build_ft: true,
    }
}

fn backend() -> Arc<Backend> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E4E_0002);
    let points = gen::uniform_points(N, 2, &mut rng);
    Arc::new(Backend::build(&points, &params()).expect("seeded backend builds"))
}

fn engine(cfg: ServeConfig) -> ShardedNavigator {
    ShardedNavigator::shared(backend(), cfg).expect("engine starts")
}

#[test]
fn batched_answers_match_direct_kernel_answers() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E4E_0002);
    let points = gen::uniform_points(N, 2, &mut rng);
    // Every shard holds a bit-identical replica, so a one-shard
    // single-worker engine over the same build params is an exact
    // oracle for the sharded, batched one.
    let oracle = ShardedNavigator::replicated(
        &points,
        &params(),
        ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        },
    )
    .expect("oracle engine starts");
    let engine = ShardedNavigator::replicated(
        &points,
        &params(),
        ServeConfig {
            shards: 3,
            workers_per_shard: 2,
            max_batch: 4,
            batch_deadline: Duration::from_micros(100),
            queue_depth: 16,
            ..ServeConfig::default()
        },
    )
    .expect("replicated engine starts");

    let mut served = Vec::new();
    let mut want = Vec::new();
    for u in 0..N as u32 {
        for v in (u + 1..N as u32).step_by(7) {
            let outcome = engine
                .call(Op::FindPath { u, v }, &mut served)
                .expect("served query succeeds");
            assert_eq!(outcome, QueryOutcome::Full);
            let oracle_outcome = oracle
                .call(Op::FindPath { u, v }, &mut want)
                .expect("oracle query succeeds");
            assert_eq!(oracle_outcome, QueryOutcome::Full);
            assert_eq!(served, want, "served path differs for ({u}, {v})");
        }
    }
    let snap = engine.snapshot();
    assert!(snap.completed > 0);
    assert_eq!(snap.shed, 0, "no shedding below the admission limit");
}

#[test]
fn all_opcodes_serve_through_the_queue() {
    let engine = engine(ServeConfig {
        shards: 2,
        max_batch: 8,
        ..ServeConfig::default()
    });
    let mut out = Vec::new();

    let outcome = engine
        .call(Op::FindPath { u: 3, v: 40 }, &mut out)
        .expect("find_path");
    assert_eq!(outcome, QueryOutcome::Full);
    assert_eq!(out.first(), Some(&3));
    assert_eq!(out.last(), Some(&40));

    let outcome = engine
        .call(Op::Route { u: 5, v: 21 }, &mut out)
        .expect("route");
    assert_eq!(outcome, QueryOutcome::Full);
    assert_eq!(out.first(), Some(&5));
    assert_eq!(out.last(), Some(&21));

    let faults = FaultSet::new(&[7]).expect("one fault");
    let outcome = engine
        .call(
            Op::RouteAvoiding {
                u: 3,
                v: 40,
                faults,
            },
            &mut out,
        )
        .expect("route_avoiding");
    assert_eq!(outcome, QueryOutcome::Full);
    assert!(!out.contains(&7), "path must avoid the fault");

    let pending = engine.try_submit(Op::Stats).expect("stats submits");
    let snap = pending.wait_stats().expect("stats answers");
    assert!(snap.completed >= 3);

    // Typed errors surface, not panics.
    let err = engine
        .call(Op::FindPath { u: 3, v: 9999 }, &mut out)
        .expect_err("out-of-range endpoint");
    assert_eq!(err, ServeError::BadEndpoint { point: 9999 });
}

#[test]
fn strict_overload_sheds_typed() {
    let engine = engine(ServeConfig {
        shards: 1,
        queue_depth: 4,
        max_batch: 4,
        // A long deadline so queued jobs sit while we probe admission.
        batch_deadline: Duration::from_millis(200),
        policy: DegradationPolicy::Strict,
        ..ServeConfig::default()
    });
    let mut pendings = Vec::new();
    let mut shed = 0usize;
    for i in 0..32u32 {
        match engine.try_submit(Op::FindPath {
            u: i % N as u32,
            v: (i + 1) % N as u32,
        }) {
            Ok(p) => pendings.push(p),
            Err(ServeError::Overloaded { depth }) => {
                assert_eq!(depth, 4);
                shed += 1;
            }
            Err(other) => panic!("unexpected admission error {other:?}"),
        }
    }
    assert!(shed > 0, "a 4-deep queue cannot admit 32 instant submits");
    let mut out = Vec::new();
    for p in pendings {
        let _outcome = p.wait_into(&mut out).expect("admitted jobs complete");
    }
    let snap = engine.snapshot();
    assert_eq!(snap.shed as usize, shed);
    assert_eq!(snap.inline_served, 0, "Strict never serves inline");
}

#[test]
fn best_effort_overload_degrades_inline() {
    let engine = engine(ServeConfig {
        shards: 1,
        queue_depth: 1,
        max_batch: 1,
        batch_deadline: Duration::from_millis(100),
        policy: DegradationPolicy::BestEffort,
        ..ServeConfig::default()
    });
    // Occupy the only slot…
    let held = engine
        .try_submit(Op::FindPath { u: 1, v: 2 })
        .expect("first submit is admitted");
    // …then call() must fall back to a degraded inline answer instead
    // of shedding.
    let mut out = Vec::new();
    let mut saw_inline = false;
    for _ in 0..8 {
        match engine.call(Op::FindPath { u: 3, v: 40 }, &mut out) {
            Ok(QueryOutcome::Degraded {
                reason: DegradeCode::Overload,
                achieved_stretch,
            }) => {
                assert!(achieved_stretch >= 1.0);
                assert_eq!(out.first(), Some(&3));
                assert_eq!(out.last(), Some(&40));
                saw_inline = true;
                break;
            }
            Ok(_) => {} // the held slot may have been freed by the worker already
            Err(e) => panic!("BestEffort must not error on overload: {e}"),
        }
    }
    let _held_outcome = held.wait_into(&mut out).expect("held job completes");
    if saw_inline {
        assert!(engine.snapshot().inline_served > 0);
    }
    assert_eq!(engine.snapshot().shed, 0, "BestEffort sheds nothing");
}

#[test]
fn injected_worker_panics_are_contained() {
    let engine = engine(ServeConfig {
        shards: 1,
        chaos_panic_period: Some(3),
        ..ServeConfig::default()
    });
    let mut out = Vec::new();
    let mut panicked = 0;
    let mut answered = 0;
    for i in 0..12u32 {
        match engine.call(Op::FindPath { u: i, v: i + 20 }, &mut out) {
            Ok(QueryOutcome::Full) => answered += 1,
            Err(ServeError::WorkerPanicked) => panicked += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(panicked, 4, "every 3rd job panics by injection");
    assert_eq!(answered, 8, "the worker survives and keeps serving");
}

#[test]
fn tcp_front_serves_the_wire_protocol() {
    let engine = Arc::new(engine(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    }));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").expect("server binds");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("client connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client timeout");

    // Pipeline three requests in one write.
    let mut frames = Vec::new();
    wire::encode_request_into(1, &Op::FindPath { u: 3, v: 40 }, &mut frames);
    wire::encode_request_into(2, &Op::Route { u: 5, v: 21 }, &mut frames);
    wire::encode_request_into(3, &Op::Stats, &mut frames);
    use std::io::Write;
    stream.write_all(&frames).expect("client writes");

    let mut body = Vec::new();
    for want_id in 1u64..=3 {
        assert!(
            hopspan_serve::read_frame(&mut stream, &mut body).expect("response frame"),
            "connection must stay open"
        );
        let view = wire::decode_frame(&body).expect("response decodes");
        assert_eq!(view.request_id, want_id);
        match wire::decode_response(&view).expect("response parses") {
            Response::Path {
                outcome,
                path,
                epoch,
            } => {
                assert_eq!(outcome, QueryOutcome::Full);
                assert!(path.len() >= 2);
                assert_eq!(epoch, 0, "static engines report epoch 0");
            }
            Response::Stats(snap) => {
                assert_eq!(want_id, 3);
                assert!(snap.completed >= 2);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // A bad-checksum frame gets a typed ERR_WIRE reply, then close.
    let mut corrupt = Vec::new();
    wire::encode_request_into(4, &Op::FindPath { u: 1, v: 2 }, &mut corrupt);
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    stream
        .write_all(&corrupt)
        .expect("client writes corruption");
    assert!(
        hopspan_serve::read_frame(&mut stream, &mut body).expect("error frame"),
        "corruption must be answered, not dropped"
    );
    let view = wire::decode_frame(&body).expect("error frame decodes");
    assert_eq!(view.status, wire::status::ERR_WIRE);

    // The server survives: a fresh connection still works.
    let mut stream2 = TcpStream::connect(addr).expect("second client connects");
    stream2
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client timeout");
    let mut frame = Vec::new();
    wire::encode_request_into(9, &Op::FindPath { u: 8, v: 30 }, &mut frame);
    stream2.write_all(&frame).expect("second client writes");
    assert!(hopspan_serve::read_frame(&mut stream2, &mut body).expect("second response"));
    let view = wire::decode_frame(&body).expect("second response decodes");
    assert_eq!(view.request_id, 9);
    assert_eq!(view.status, wire::status::OK);

    server.shutdown();
}

#[test]
#[should_panic(expected = "shard_of_point requires shards >= 1")]
fn zero_shard_dispatch_panics_instead_of_masking() {
    // A zero shard count used to be silently masked to one shard;
    // construction-side validation rejects it typed, so dispatch now
    // treats it as the bug it is.
    let _ = shard_of_point(7, 0);
}

/// A unique temp file for one test's snapshot.
fn temp_snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hopspan-serve-{tag}-{}.hsnp", std::process::id()))
}

#[test]
fn snapshot_boot_answers_match_the_live_engine() {
    let live = engine(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    });
    let path = temp_snapshot_path("boot");
    live.set_snapshot_path(&path);
    let digest = live.write_snapshot().expect("snapshot writes");
    assert!(digest.bytes > 0);
    assert_eq!(
        live.load_snapshot_verify().expect("snapshot verifies"),
        digest,
        "verify must report the same digest the write did"
    );

    let cfg = || ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    };
    let booted = [
        ShardedNavigator::replicated_from_snapshot(&path, cfg()).expect("replicated boot"),
        ShardedNavigator::shared_from_snapshot(&path, cfg()).expect("shared boot"),
    ];
    let mut got = Vec::new();
    let mut want = Vec::new();
    for engine in &booted {
        assert_eq!(engine.points(), N);
        for u in (0..N as u32).step_by(11) {
            let v = (u + 17) % N as u32;
            if u == v {
                continue;
            }
            let outcome = engine
                .call(Op::FindPath { u, v }, &mut got)
                .expect("booted engine serves");
            assert_eq!(outcome, QueryOutcome::Full);
            let live_outcome = live
                .call(Op::FindPath { u, v }, &mut want)
                .expect("live engine serves");
            assert_eq!(live_outcome, QueryOutcome::Full);
            assert_eq!(got, want, "snapshot boot diverged for ({u}, {v})");
        }
        // The routing scheme is not part of the snapshot, so a booted
        // engine answers Route with a typed Unsupported.
        assert!(matches!(
            engine.call(Op::Route { u: 1, v: 2 }, &mut got),
            Err(ServeError::Unsupported { .. })
        ));
        // Boot constructors remember their source file.
        assert_eq!(engine.snapshot_path().as_deref(), Some(path.as_path()));
    }
    let _cleanup = std::fs::remove_file(&path);
}

#[test]
fn snapshot_opcodes_serve_over_tcp() {
    use std::io::Write;

    let engine = Arc::new(engine(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    }));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").expect("server binds");
    let mut stream = TcpStream::connect(server.local_addr()).expect("client connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client timeout");
    let mut frame = Vec::new();
    let mut body = Vec::new();

    // Without a configured path the opcode answers typed Unsupported —
    // and the connection stays open (the frame was sound).
    wire::encode_snapshot_request_into(1, wire::opcode::SNAPSHOT, &mut frame);
    stream.write_all(&frame).expect("client writes");
    assert!(hopspan_serve::read_frame(&mut stream, &mut body).expect("reply arrives"));
    let view = wire::decode_frame(&body).expect("reply decodes");
    assert_eq!(view.request_id, 1);
    assert!(matches!(
        wire::decode_response(&view).expect("reply parses"),
        Response::Error(ServeError::Unsupported { .. })
    ));

    // With a path: SNAPSHOT writes and reports a digest, LOAD_SNAPSHOT
    // re-reads, revalidates against the live engine and echoes it.
    let path = temp_snapshot_path("tcp");
    engine.set_snapshot_path(&path);
    let mut digest = (0u64, 0u64);
    for (id, op) in [
        (2, wire::opcode::SNAPSHOT),
        (3, wire::opcode::LOAD_SNAPSHOT),
    ] {
        frame.clear();
        wire::encode_snapshot_request_into(id, op, &mut frame);
        stream.write_all(&frame).expect("client writes");
        assert!(hopspan_serve::read_frame(&mut stream, &mut body).expect("reply arrives"));
        let view = wire::decode_frame(&body).expect("reply decodes");
        assert_eq!(view.request_id, id);
        match wire::decode_response(&view).expect("reply parses") {
            Response::Snapshot { bytes, checksum } => {
                assert!(bytes > 0);
                if op == wire::opcode::SNAPSHOT {
                    digest = (bytes, checksum);
                } else {
                    assert_eq!((bytes, checksum), digest, "load must echo the write digest");
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // A snapshot request with a non-empty payload is a BadRequest.
    frame.clear();
    wire::encode_request_into(4, &Op::FindPath { u: 0, v: 1 }, &mut frame);
    frame[10] = wire::opcode::SNAPSHOT; // opcode byte: 4B length prefix + 4B magic + 2B version
    let cs_at = frame.len() - 8;
    let cs = wire::fnv1a(&frame[4..cs_at]);
    frame[cs_at..].copy_from_slice(&cs.to_le_bytes());
    stream.write_all(&frame).expect("client writes");
    assert!(hopspan_serve::read_frame(&mut stream, &mut body).expect("reply arrives"));
    let view = wire::decode_frame(&body).expect("reply decodes");
    assert!(matches!(
        wire::decode_response(&view).expect("reply parses"),
        Response::Error(ServeError::BadRequest)
    ));

    server.shutdown();
    let _cleanup = std::fs::remove_file(&path);
}
