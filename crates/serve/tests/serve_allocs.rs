//! Zero-allocation guarantee of the steady-state serve path.
//!
//! Unlike `tests/query_allocs.rs` at the workspace root (per-thread
//! counters), this installs a **process-global** counting allocator:
//! the shard workers are separate threads, and the contract is that
//! the *whole process* performs zero heap allocations per served
//! query once warm — submit, enqueue, batch, execute, answer copy,
//! slot release, all of it. This file holds a single test so no
//! concurrent libtest thread can pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hopspan_metric::gen;
use hopspan_serve::{BackendParams, FaultSet, Op, ServeConfig, ShardedNavigator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Allocation events (alloc + realloc) across *all* threads.
static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper counting allocation events globally.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic
// increment and cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N: usize = 64;

/// One sweep of the three query opcodes over a deterministic pair set.
fn sweep(engine: &ShardedNavigator, out: &mut Vec<usize>) {
    let faults = FaultSet::new(&[7]).expect("one fault fits");
    for u in 0..N as u32 {
        let v = (u + 13) % N as u32;
        if u == v {
            continue;
        }
        engine
            .call(Op::FindPath { u, v }, out)
            .expect("find_path serves");
        engine.call(Op::Route { u, v }, out).expect("route serves");
        if u != 7 && v != 7 {
            engine
                .call(Op::RouteAvoiding { u, v, faults }, out)
                .expect("route_avoiding serves");
        }
    }
}

#[test]
fn steady_state_serving_does_not_allocate() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x00A1_10C5);
    let points = gen::uniform_points(N, 2, &mut rng);
    let engine = ShardedNavigator::replicated(
        &points,
        &BackendParams::default(),
        ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            max_batch: 8,
            batch_deadline: Duration::from_micros(50),
            queue_depth: 8,
            ..ServeConfig::default()
        },
    )
    .expect("engine starts");

    let mut out = Vec::new();
    // Warm-up: grow every reusable buffer (queue rings, slot path
    // buffers, worker scratch, the caller's out vector) to steady
    // state.
    for _ in 0..3 {
        sweep(&engine, &mut out);
    }

    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    sweep(&engine, &mut out);
    sweep(&engine, &mut out);
    let events = ALLOC_EVENTS.load(Ordering::Relaxed) - before;
    assert_eq!(
        events, 0,
        "steady-state serving must not allocate anywhere in the process"
    );

    // Sanity: the counter is alive — the allocating inline fallback
    // (fresh scratch) must register.
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    engine
        .call_inline(Op::FindPath { u: 3, v: 40 }, &mut out)
        .expect("inline call serves");
    let events = ALLOC_EVENTS.load(Ordering::Relaxed) - before;
    assert!(events > 0, "counter failed to observe inline-call allocs");
}
