//! Wire-protocol invariants: encode/decode round-trips for every
//! opcode and status, rejection of every single-byte corruption, and
//! golden byte pins so the protocol layout cannot drift without a
//! deliberate [`hopspan_serve::wire::VERSION`] bump.

use hopspan_serve::wire::{self, opcode, status, Response, WireError};
use hopspan_serve::{
    DegradeCode, FaultSet, MetricsSnapshot, Op, QueryOutcome, ServeError, MAX_WIRE_DIM,
    MAX_WIRE_FAULTS,
};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Strips the 4-byte length prefix and checks it against the body.
fn body(frame: &[u8]) -> &[u8] {
    let len = u32::from_le_bytes(frame[0..4].try_into().expect("prefix")) as usize;
    assert_eq!(len, frame.len() - 4, "length prefix must match the body");
    &frame[4..]
}

fn arb_op(rng: &mut TestRng) -> Op {
    let u = (0u32..4096).new_value(rng);
    let v = (0u32..4096).new_value(rng);
    match (0usize..6).new_value(rng) {
        0 => Op::FindPath { u, v },
        1 => Op::Route { u, v },
        2 => {
            let nf = (0usize..MAX_WIRE_FAULTS + 1).new_value(rng);
            let ids: Vec<u32> = (0..nf).map(|_| (0u32..4096).new_value(rng)).collect();
            Op::RouteAvoiding {
                u,
                v,
                faults: FaultSet::new(&ids).expect("nf <= MAX_WIRE_FAULTS"),
            }
        }
        3 => {
            let dim = (1usize..MAX_WIRE_DIM + 1).new_value(rng);
            let coords: Vec<f64> = (0..dim)
                .map(|_| (-100.0f64..100.0).new_value(rng))
                .collect();
            Op::insert(&coords).expect("dim <= MAX_WIRE_DIM")
        }
        4 => Op::Remove { id: u },
        _ => Op::Stats,
    }
}

fn arb_error(rng: &mut TestRng) -> ServeError {
    let a = (0u32..100_000).new_value(rng);
    let b = (0u32..100_000).new_value(rng);
    match (0usize..11).new_value(rng) {
        0 => ServeError::Overloaded { depth: a },
        1 => ServeError::ShuttingDown,
        2 => ServeError::BadRequest,
        3 => ServeError::BadEndpoint { point: a },
        4 => ServeError::Uncovered { u: a, v: b },
        5 => ServeError::TooManyFaults { got: a, limit: b },
        6 => ServeError::WorkerPanicked,
        7 => ServeError::Unsupported {
            opcode: (a % 256) as u8,
        },
        8 => ServeError::PointRetired { point: a },
        9 => ServeError::Duplicate { of: a },
        _ => ServeError::Internal,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every request round-trips bit-exactly, and flipping any single
    /// byte of the body is rejected with a typed `WireError`.
    #[test]
    fn requests_round_trip_and_reject_corruption(seed in 0u64..1_000_000) {
        let mut rng = TestRng::for_test(&format!("wire-req-{seed}"));
        let op = arb_op(&mut rng);
        let id = (0u64..u64::MAX).new_value(&mut rng);
        let mut frame = Vec::new();
        wire::encode_request_into(id, &op, &mut frame);
        let b = body(&frame);

        let view = wire::decode_frame(b).expect("clean frame decodes");
        prop_assert_eq!(view.request_id, id);
        prop_assert_eq!(view.opcode, op.opcode());
        let decoded = wire::decode_request(&view).expect("clean request parses");
        prop_assert_eq!(decoded, op);

        // Single-byte corruption anywhere in the body must be caught
        // typed — magic and version name themselves, everything else
        // fails the FNV-1a checksum.
        let at = (0usize..b.len()).new_value(&mut rng);
        let flip = 1u8 << (0usize..8).new_value(&mut rng);
        let mut bad = b.to_vec();
        bad[at] ^= flip;
        match wire::decode_frame(&bad) {
            Err(
                WireError::BadMagic
                | WireError::BadVersion { .. }
                | WireError::BadChecksum { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            Ok(_) => prop_assert!(false, "corrupted byte {at} accepted"),
        }
    }

    /// Path, stats and error responses round-trip through the typed
    /// decoder.
    #[test]
    fn responses_round_trip(seed in 0u64..1_000_000) {
        let mut rng = TestRng::for_test(&format!("wire-resp-{seed}"));
        let id = (0u64..u64::MAX).new_value(&mut rng);

        // Path response (full or degraded).
        let n = (1usize..12).new_value(&mut rng);
        let path: Vec<usize> = (0..n).map(|_| (0usize..4096).new_value(&mut rng)).collect();
        let outcome = if (0usize..2).new_value(&mut rng) == 0 {
            QueryOutcome::Full
        } else {
            QueryOutcome::Degraded {
                reason: DegradeCode::from_code((1usize..6).new_value(&mut rng) as u8)
                    .expect("codes 1..=5 are valid"),
                achieved_stretch: (1.0f64..8.0).new_value(&mut rng),
            }
        };
        let epoch = (0u64..u64::MAX).new_value(&mut rng);
        let mut frame = Vec::new();
        wire::encode_path_response_into(id, opcode::FIND_PATH, outcome, epoch, &path, &mut frame);
        let view = wire::decode_frame(body(&frame)).expect("path frame decodes");
        match wire::decode_response(&view).expect("path response parses") {
            Response::Path { outcome: got, path: got_path, epoch: got_epoch } => {
                prop_assert_eq!(got, outcome);
                prop_assert_eq!(got_epoch, epoch);
                let want: Vec<u32> = path.iter().map(|&p| p as u32).collect();
                prop_assert_eq!(got_path, want);
            }
            other => prop_assert!(false, "wrong response kind {other:?}"),
        }

        // Mutation response (insert/remove acks carry id + epoch).
        let mid = (0u32..1_000_000).new_value(&mut rng);
        let mop = if (0usize..2).new_value(&mut rng) == 0 { opcode::INSERT } else { opcode::REMOVE };
        let mut mframe = Vec::new();
        wire::encode_mutation_response_into(id, mop, mid, epoch, &mut mframe);
        let mview = wire::decode_frame(body(&mframe)).expect("mutation frame decodes");
        match wire::decode_response(&mview).expect("mutation response parses") {
            Response::Mutation { id: got_id, epoch: got_epoch } => {
                prop_assert_eq!(got_id, mid);
                prop_assert_eq!(got_epoch, epoch);
            }
            other => prop_assert!(false, "wrong response kind {other:?}"),
        }

        // Error response: status byte + detail params survive.
        let err = arb_error(&mut rng);
        let mut eframe = Vec::new();
        wire::encode_error_response_into(id, opcode::ROUTE, err, &mut eframe);
        let eview = wire::decode_frame(body(&eframe)).expect("error frame decodes");
        match wire::decode_response(&eview).expect("error response parses") {
            Response::Error(got) => prop_assert_eq!(got, err),
            other => prop_assert!(false, "wrong response kind {other:?}"),
        }

        // Stats response.
        let snap = MetricsSnapshot {
            submitted: (0u64..1_000_000).new_value(&mut rng),
            completed: (0u64..1_000_000).new_value(&mut rng),
            shed: (0u64..1_000).new_value(&mut rng),
            degraded: (0u64..1_000).new_value(&mut rng),
            inline_served: (0u64..1_000).new_value(&mut rng),
            errors: (0u64..1_000).new_value(&mut rng),
            batches: (0u64..100_000).new_value(&mut rng),
            batched_jobs: (0u64..1_000_000).new_value(&mut rng),
            p50_ns: (0u64..1_000_000).new_value(&mut rng),
            p99_ns: (0u64..10_000_000).new_value(&mut rng),
            failovers: (0u64..1_000).new_value(&mut rng),
            retries: (0u64..1_000).new_value(&mut rng),
            shard_down_events: (0u64..1_000).new_value(&mut rng),
            respawns: (0u64..1_000).new_value(&mut rng),
            shard_health: (0u64..u64::MAX).new_value(&mut rng),
            inserts: (0u64..1_000).new_value(&mut rng),
            removes: (0u64..1_000).new_value(&mut rng),
            rebuilds: (0u64..1_000).new_value(&mut rng),
            shard_epochs: (0u64..u64::MAX).new_value(&mut rng),
        };
        let mut sframe = Vec::new();
        wire::encode_stats_response_into(id, &snap, &mut sframe);
        let sview = wire::decode_frame(body(&sframe)).expect("stats frame decodes");
        match wire::decode_response(&sview).expect("stats response parses") {
            Response::Stats(got) => prop_assert_eq!(got, snap),
            other => prop_assert!(false, "wrong response kind {other:?}"),
        }
    }
}

/// Golden byte pins: one frame per opcode, bytes spelled out in full.
/// If any of these change, the layout changed — bump
/// [`wire::VERSION`] and update the pins deliberately.
#[test]
fn golden_frames_per_opcode() {
    // FindPath { u: 5, v: 40 }, id 7.
    let mut f = Vec::new();
    wire::encode_request_into(7, &Op::FindPath { u: 5, v: 40 }, &mut f);
    assert_eq!(
        f,
        [
            32, 0, 0, 0, // length prefix: 32-byte body
            b'H', b'S', b'P', b'N', // magic
            3, 0, // version 3
            0, // opcode FIND_PATH
            0, // status OK
            7, 0, 0, 0, 0, 0, 0, 0, // request id 7
            5, 0, 0, 0, // u = 5
            40, 0, 0, 0, // v = 40
            151, 40, 103, 128, 105, 66, 59, 70, // FNV-1a checksum
        ]
    );

    // Route { u: 1, v: 2 }, id 1.
    let mut f = Vec::new();
    wire::encode_request_into(1, &Op::Route { u: 1, v: 2 }, &mut f);
    assert_eq!(
        f,
        [
            32, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2,
            0, 0, 0, 246, 18, 29, 47, 123, 52, 201, 56,
        ]
    );

    // RouteAvoiding { u: 3, v: 9, faults: {4} }, id 2.
    let mut f = Vec::new();
    let faults = FaultSet::new(&[4]).expect("one fault fits");
    wire::encode_request_into(2, &Op::RouteAvoiding { u: 3, v: 9, faults }, &mut f);
    assert_eq!(
        f,
        [
            37, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 2, 0, 2, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 9,
            0, 0, 0, 1, 4, 0, 0, 0, 70, 15, 177, 0, 58, 247, 82, 190,
        ]
    );

    // Stats, id 0.
    let mut f = Vec::new();
    wire::encode_request_into(0, &Op::Stats, &mut f);
    assert_eq!(
        f,
        [
            24, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 198, 97, 203,
            89, 165, 112, 76, 246,
        ]
    );

    // Snapshot request, id 7 (empty payload).
    let mut f = Vec::new();
    wire::encode_snapshot_request_into(7, opcode::SNAPSHOT, &mut f);
    assert_eq!(
        f,
        [
            24, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 4, 0, 7, 0, 0, 0, 0, 0, 0, 0, 254, 40, 231,
            255, 192, 174, 248, 21,
        ]
    );

    // LoadSnapshot request, id 8 (empty payload).
    let mut f = Vec::new();
    wire::encode_snapshot_request_into(8, opcode::LOAD_SNAPSHOT, &mut f);
    assert_eq!(
        f,
        [
            24, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 5, 0, 8, 0, 0, 0, 0, 0, 0, 0, 24, 229, 100,
            157, 216, 226, 67, 90,
        ]
    );

    // Insert { coords: [1.5, -2.0] }, id 5 — payload is `dim u8` then
    // dim little-endian f64 bit patterns.
    let mut f = Vec::new();
    wire::encode_request_into(5, &Op::insert(&[1.5, -2.0]).expect("dim 2 fits"), &mut f);
    assert_eq!(
        f,
        [
            41, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 6, 0, 5, 0, 0, 0, 0, 0, 0, 0, // header
            2, // dim
            0, 0, 0, 0, 0, 0, 248, 63, // 1.5f64
            0, 0, 0, 0, 0, 0, 0, 192, // -2.0f64
            145, 223, 159, 138, 172, 247, 213, 202, // checksum
        ]
    );

    // Remove { id: 12 }, id 6.
    let mut f = Vec::new();
    wire::encode_request_into(6, &Op::Remove { id: 12 }, &mut f);
    assert_eq!(
        f,
        [
            28, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 7, 0, 6, 0, 0, 0, 0, 0, 0, 0, 12, 0, 0, 0,
            104, 15, 185, 165, 223, 239, 126, 208,
        ]
    );

    // Mutation response: id 33 committed at epoch 4, request id 6.
    let mut f = Vec::new();
    wire::encode_mutation_response_into(6, opcode::INSERT, 33, 4, &mut f);
    assert_eq!(
        f,
        [
            36, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 6, 0, 6, 0, 0, 0, 0, 0, 0, 0, // header
            33, 0, 0, 0, // external id
            4, 0, 0, 0, 0, 0, 0, 0, // epoch
            200, 94, 129, 148, 194, 251, 116, 27, // checksum
        ]
    );
}

/// The snapshot digest response round-trips and pins its bytes.
#[test]
fn snapshot_responses_round_trip() {
    let mut f = Vec::new();
    wire::encode_snapshot_response_into(9, opcode::SNAPSHOT, 4096, 0xABCD, &mut f);
    assert_eq!(
        f,
        [
            40, 0, 0, 0, b'H', b'S', b'P', b'N', 3, 0, 4, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 16, 0, 0,
            0, 0, 0, 0, 205, 171, 0, 0, 0, 0, 0, 0, 20, 235, 52, 65, 96, 4, 140, 244,
        ]
    );
    for op in [opcode::SNAPSHOT, opcode::LOAD_SNAPSHOT] {
        let mut f = Vec::new();
        wire::encode_snapshot_response_into(11, op, u64::MAX, 0x1234_5678_9ABC_DEF0, &mut f);
        let view = wire::decode_frame(body(&f)).expect("snapshot response decodes");
        assert_eq!(view.request_id, 11);
        assert_eq!(view.opcode, op);
        match wire::decode_response(&view).expect("snapshot response parses") {
            Response::Snapshot { bytes, checksum } => {
                assert_eq!(bytes, u64::MAX);
                assert_eq!(checksum, 0x1234_5678_9ABC_DEF0);
            }
            other => panic!("wrong response kind {other:?}"),
        }
    }
    // A short digest payload is a typed BadPayload, not a panic.
    let mut f = Vec::new();
    wire::encode_snapshot_response_into(12, opcode::SNAPSHOT, 1, 2, &mut f);
    let mut b = body(&f).to_vec();
    b.truncate(b.len() - 16); // drop 8 payload bytes + re-add checksum below
    let cs = wire::fnv1a(&b);
    b.extend_from_slice(&cs.to_le_bytes());
    let view = wire::decode_frame(&b).expect("truncated-payload frame decodes");
    assert!(matches!(
        wire::decode_response(&view),
        Err(WireError::BadPayload)
    ));
}

/// The headline corruption matrix, deterministic edition: truncation,
/// bad magic, version skew, oversized claims and unknown opcodes all
/// produce their own typed error.
#[test]
fn typed_rejection_matrix() {
    let mut f = Vec::new();
    wire::encode_request_into(9, &Op::FindPath { u: 1, v: 2 }, &mut f);
    let b = body(&f).to_vec();

    // Truncated below the minimum frame.
    assert!(matches!(
        wire::decode_frame(&b[..10]),
        Err(WireError::Truncated { .. })
    ));

    // Bad magic.
    let mut bad = b.clone();
    bad[0] = b'X';
    assert!(matches!(wire::decode_frame(&bad), Err(WireError::BadMagic)));

    // Version skew.
    let mut bad = b.clone();
    bad[4] = 99;
    // The checksum still covers the version bytes, so recompute it to
    // isolate the version check.
    let cs_at = bad.len() - 8;
    let cs = wire::fnv1a(&bad[..cs_at]);
    bad[cs_at..].copy_from_slice(&cs.to_le_bytes());
    assert!(matches!(
        wire::decode_frame(&bad),
        Err(WireError::BadVersion { got: 99 })
    ));

    // Unknown opcode in a checksum-valid frame: decode_frame passes,
    // decode_request rejects typed.
    let mut bad = b.clone();
    bad[6] = 200;
    let cs_at = bad.len() - 8;
    let cs = wire::fnv1a(&bad[..cs_at]);
    bad[cs_at..].copy_from_slice(&cs.to_le_bytes());
    let view = wire::decode_frame(&bad).expect("checksum fixed up");
    assert!(matches!(
        wire::decode_request(&view),
        Err(WireError::UnknownOpcode { got: 200 })
    ));

    // Unknown status on the response side.
    let mut bad = b;
    bad[7] = 250;
    let cs_at = bad.len() - 8;
    let cs = wire::fnv1a(&bad[..cs_at]);
    bad[cs_at..].copy_from_slice(&cs.to_le_bytes());
    let view = wire::decode_frame(&bad).expect("checksum fixed up");
    assert!(matches!(
        wire::decode_response(&view),
        Err(WireError::UnknownStatus { got: 250 })
    ));

    // ERR_WIRE responses round-trip.
    let mut wf = Vec::new();
    wire::encode_wire_error_into(42, &mut wf);
    let view = wire::decode_frame(body(&wf)).expect("wire-error frame decodes");
    assert_eq!(view.status, status::ERR_WIRE);
    assert!(matches!(
        wire::decode_response(&view),
        Ok(Response::WireRejected)
    ));
}
