//! Serve-layer integration of the dynamic engine: `Insert`/`Remove`
//! opcodes end to end (queued, inline and over TCP), epoch ids echoed
//! in replies, typed `PointRetired` answers, mutation metrics and the
//! per-shard epoch byte — plus the suspect-shard load easing that
//! rides along in `dispatch_for`.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hopspan_dynamic::DynConfig;
use hopspan_serve::wire::{self, Response};
use hopspan_serve::{
    Op, QueryOutcome, ServeConfig, ServeError, Server, ShardHealth, ShardedNavigator,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn uniform(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>() * 10.0).collect())
        .collect()
}

fn dynamic_engine(n: usize, seed: u64, cfg: ServeConfig) -> ShardedNavigator {
    ShardedNavigator::dynamic(&uniform(n, 2, seed), DynConfig::default(), cfg)
        .expect("dynamic engine builds")
}

#[test]
fn mutations_commit_through_the_queue_and_echo_epochs() {
    let engine = dynamic_engine(
        40,
        3,
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    );
    let mut path = Vec::new();

    // Queries answer against epoch 1 before any mutation.
    let (outcome, epoch) = engine
        .call_with_epoch(Op::FindPath { u: 0, v: 17 }, &mut path)
        .expect("query serves");
    assert_eq!(outcome, QueryOutcome::Full);
    assert_eq!(epoch, 1);

    // An insert commits with a fresh external id at the current epoch.
    let op = Op::insert(&[42.0, -7.0]).expect("dim 2 fits");
    let outcome = engine.call(op, &mut path).expect("insert commits");
    let QueryOutcome::Mutation { id, epoch } = outcome else {
        panic!("expected Mutation, got {outcome:?}");
    };
    assert_eq!(id, 40);
    assert!(epoch >= 1);

    // Not navigable until the next swap: typed BadEndpoint, not junk.
    assert!(matches!(
        engine.call(Op::FindPath { u: id, v: 0 }, &mut path),
        Err(ServeError::BadEndpoint { point }) if point == id
    ));

    // Force the swap, then the insert serves and replies echo the new
    // epoch — the staleness signal the wire contract promises.
    let handle = engine.dynamic_handle().expect("dynamic engine");
    let info = handle.flush();
    assert!(info.id >= 2);
    let (outcome, epoch) = engine
        .call_with_epoch(Op::FindPath { u: id, v: 0 }, &mut path)
        .expect("published insert serves");
    assert_eq!(outcome, QueryOutcome::Full);
    assert_eq!(epoch, info.id);
    assert_eq!(path.first(), Some(&(id as usize)));

    // Remove tombstones immediately; the id answers PointRetired from
    // every shard, forever.
    let outcome = engine
        .call(Op::Remove { id: 5 }, &mut path)
        .expect("remove");
    assert!(matches!(outcome, QueryOutcome::Mutation { id: 5, .. }));
    for probe in [Op::FindPath { u: 5, v: 0 }, Op::FindPath { u: 1, v: 5 }] {
        assert!(matches!(
            engine.call(probe, &mut path),
            Err(ServeError::PointRetired { point: 5 })
        ));
    }

    // Duplicate inserts and unknown/re-removed ids answer typed.
    let dup = Op::insert(&[42.0, -7.0]).expect("dim 2 fits");
    assert!(matches!(
        engine.call(dup, &mut path),
        Err(ServeError::Duplicate { of }) if of == id
    ));
    assert!(matches!(
        engine.call(Op::Remove { id: 9999 }, &mut path),
        Err(ServeError::BadEndpoint { point: 9999 })
    ));
    assert!(matches!(
        engine.call(Op::Remove { id: 5 }, &mut path),
        Err(ServeError::PointRetired { point: 5 })
    ));

    // Mutation counters and the per-shard epoch byte land in Stats.
    let snap = engine.snapshot();
    assert_eq!(snap.inserts, 1);
    assert_eq!(snap.removes, 1);
    let expect_byte = (handle.epoch_id() & 0xff) as u8;
    for shard in 0..2 {
        let byte = ((snap.shard_epochs >> (8 * shard)) & 0xff) as u8;
        assert_eq!(byte, expect_byte, "shard {shard} epoch byte");
    }
}

#[test]
fn static_backends_reject_mutations_typed() {
    let points = hopspan_metric::EuclideanSpace::from_points(&uniform(30, 2, 5));
    let engine = ShardedNavigator::replicated(
        &points,
        &hopspan_serve::BackendParams {
            build_router: false,
            build_ft: false,
            ..hopspan_serve::BackendParams::default()
        },
        ServeConfig::default(),
    )
    .expect("static engine builds");
    let mut path = Vec::new();
    assert!(matches!(
        engine.call(Op::insert(&[1.0, 2.0]).expect("dim 2 fits"), &mut path),
        Err(ServeError::Unsupported {
            opcode: wire::opcode::INSERT
        })
    ));
    assert!(matches!(
        engine.call(Op::Remove { id: 3 }, &mut path),
        Err(ServeError::Unsupported {
            opcode: wire::opcode::REMOVE
        })
    ));
    assert!(engine.dynamic_handle().is_none());
}

#[test]
fn mutations_serve_over_tcp_with_epoch_echo() {
    let engine = Arc::new(dynamic_engine(32, 7, ServeConfig::default()));
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0").expect("server binds");
    let mut stream = TcpStream::connect(server.local_addr()).expect("client connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client timeout");

    let mut frames = Vec::new();
    let insert = Op::insert(&[33.5, 21.25]).expect("dim 2 fits");
    wire::encode_request_into(1, &insert, &mut frames);
    wire::encode_request_into(2, &Op::Remove { id: 4 }, &mut frames);
    wire::encode_request_into(3, &Op::FindPath { u: 0, v: 9 }, &mut frames);
    wire::encode_request_into(4, &Op::FindPath { u: 4, v: 9 }, &mut frames);
    use std::io::Write;
    stream.write_all(&frames).expect("client writes");

    let mut body = Vec::new();
    for want_id in 1u64..=4 {
        assert!(
            hopspan_serve::read_frame(&mut stream, &mut body).expect("response frame"),
            "connection must stay open"
        );
        let view = wire::decode_frame(&body).expect("response decodes");
        assert_eq!(view.request_id, want_id);
        match wire::decode_response(&view).expect("response parses") {
            Response::Mutation { id, epoch } => {
                assert!(want_id <= 2, "mutation reply for a mutation request");
                if want_id == 1 {
                    assert_eq!(id, 32, "first insert gets the next external id");
                } else {
                    assert_eq!(id, 4);
                }
                assert!(epoch >= 1);
            }
            Response::Path {
                outcome,
                path,
                epoch,
            } => {
                assert_eq!(want_id, 3);
                assert_eq!(outcome, QueryOutcome::Full);
                assert!(path.len() >= 2);
                assert!(epoch >= 1, "dynamic replies echo a live epoch id");
            }
            Response::Error(e) => {
                assert_eq!(want_id, 4);
                assert!(matches!(e, ServeError::PointRetired { point: 4 }));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn suspect_easing_sheds_a_deterministic_fraction_to_healthy_shards() {
    let points = hopspan_metric::EuclideanSpace::from_points(&uniform(40, 2, 11));
    let params = hopspan_serve::BackendParams {
        build_router: false,
        build_ft: false,
        ..hopspan_serve::BackendParams::default()
    };
    let cfg = ServeConfig {
        shards: 4,
        suspect_keep_permille: 500,
        ..ServeConfig::default()
    };
    let engine =
        ShardedNavigator::replicated(&points, &params, cfg.clone()).expect("engine builds");
    let ops: Vec<Op> = (0..200u32).map(|u| Op::FindPath { u, v: 0 }).collect();

    // Baseline: with every shard healthy, dispatch == ownership.
    for op in &ops {
        assert_eq!(engine.dispatch_for(op), engine.shard_for(op));
    }

    // Demote one shard to Suspect: its owned requests split into a
    // kept group (still on the owner) and a shed group (re-routed to
    // strictly-Healthy shards). Both groups must be non-empty at 500‰
    // over 200 requests, and no shed request may land on the suspect.
    engine.set_health(1, ShardHealth::Suspect);
    let mut kept = 0usize;
    let mut shed = 0usize;
    let first: Vec<usize> = ops.iter().map(|op| engine.dispatch_for(op)).collect();
    for (op, &target) in ops.iter().zip(&first) {
        let owner = engine.shard_for(op);
        if owner != 1 {
            assert_eq!(target, owner, "healthy owners keep their traffic");
        } else if target == 1 {
            kept += 1;
        } else {
            shed += 1;
            assert_eq!(engine.health(target), ShardHealth::Healthy);
        }
    }
    assert!(kept > 0, "500 permille must keep some suspect traffic");
    assert!(shed > 0, "500 permille must shed some suspect traffic");

    // The easing decision is a pure function of (point, owner): a
    // second pass and a second identically-configured engine agree.
    let second: Vec<usize> = ops.iter().map(|op| engine.dispatch_for(op)).collect();
    assert_eq!(first, second);
    let twin = ShardedNavigator::replicated(&points, &params, cfg).expect("twin builds");
    twin.set_health(1, ShardHealth::Suspect);
    let twin_targets: Vec<usize> = ops.iter().map(|op| twin.dispatch_for(op)).collect();
    assert_eq!(first, twin_targets);

    // keep=1000 (the default) disables easing entirely.
    let eased_off = ShardedNavigator::replicated(
        &points,
        &params,
        ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        },
    )
    .expect("engine builds");
    eased_off.set_health(1, ShardHealth::Suspect);
    for op in &ops {
        assert_eq!(eased_off.dispatch_for(op), eased_off.shard_for(op));
    }

    // Config validation rejects an out-of-range permille.
    assert!(ShardedNavigator::replicated(
        &points,
        &params,
        ServeConfig {
            suspect_keep_permille: 1001,
            ..ServeConfig::default()
        }
    )
    .is_err());
}
