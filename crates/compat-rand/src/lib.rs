//! Offline, in-tree subset of the `rand` 0.8 API.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`] (with the SplitMix64 `seed_from_u64` expansion of
//! `rand_core` 0.6), [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`]
//! (Lemire's widening-multiply method for integers, 53-bit mantissa fill
//! for `f64`, matching upstream `rand` 0.8 bit-for-bit on the same
//! stream), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Every algorithm mirrors upstream `rand` 0.8.5 so seeded experiment
//! streams stay reproducible if the real crate is ever swapped back in.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream, exactly as
    /// `rand_core` 0.6 does, then calls [`SeedableRng::from_seed`] — so
    /// seeded generators produce the same streams as upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            // Advance first, to get away from low-Hamming-weight inputs.
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a generator's raw bits (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits into [0, 1), as upstream rand 0.8.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range that can be sampled uniformly (the subset of upstream
/// `SampleRange` the workspace uses: half-open integer and float ranges).
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire's widening-multiply method with the upstream
                // rand 0.8 acceptance zone.
                let zone = (span << span.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128) * (span as u128);
                    let lo = m as u64;
                    if lo <= zone {
                        return self.start.wrapping_add((m >> 64) as u64 as $ty);
                    }
                }
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        // Rejection sampling on the top multiple of span below 2^128.
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v <= zone {
                return self.start + v % span;
            }
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of the `Standard` distribution (e.g. `f64` in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related adaptors (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates, matching upstream
        /// `rand` 0.8 draw order).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Simple in-tree generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast generator (SplitMix64); **not** the upstream
    /// `StdRng` algorithm, provided for completeness only.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }

    /// PCG-XSH-RR 64/32 (the `rand_pcg` crate's `Lcg64Xsh32`/`Pcg32`
    /// algorithm): a small, statistically strong generator whose entire
    /// state is two `u64`s, so chaos campaigns can name a scenario by
    /// `(seed, stream)` and replay it bit-identically anywhere.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Pcg32 {
        state: u64,
        increment: u64,
    }

    impl Pcg32 {
        const MUL: u64 = 6364136223846793005;

        /// Creates a generator from a state seed and a stream selector,
        /// matching `rand_pcg::Pcg32::new`.
        pub fn new(state: u64, stream: u64) -> Self {
            // The increment must be odd; the (stream << 1) | 1 encoding
            // is upstream's.
            let increment = (stream << 1) | 1;
            let mut pcg = Pcg32 {
                state: state.wrapping_add(increment),
                increment,
            };
            pcg.step();
            pcg
        }

        #[inline]
        fn step(&mut self) {
            self.state = self
                .state
                .wrapping_mul(Self::MUL)
                .wrapping_add(self.increment);
        }
    }

    impl RngCore for Pcg32 {
        fn next_u32(&mut self) -> u32 {
            let state = self.state;
            self.step();
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            xorshifted.rotate_right(rot)
        }

        fn next_u64(&mut self) -> u64 {
            // Low word first, as upstream `rand_core` fills u64s.
            let lo = u64::from(self.next_u32());
            let hi = u64::from(self.next_u32());
            (hi << 32) | lo
        }
    }

    impl SeedableRng for Pcg32 {
        type Seed = [u8; 16];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u8; 8];
            let mut i = [0u8; 8];
            s.copy_from_slice(&seed[..8]);
            i.copy_from_slice(&seed[8..]);
            // Upstream interprets the second half as the raw increment
            // (forced odd), not a stream id.
            let increment = u64::from_le_bytes(i) | 1;
            let mut pcg = Pcg32 {
                state: u64::from_le_bytes(s).wrapping_add(increment),
                increment,
            };
            pcg.step();
            pcg
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&y));
            let z: u128 = rng.gen_range(1u128..1_000_000);
            assert!((1..1_000_000).contains(&z));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = rngs::SmallRng::seed_from_u64(9);
        let b = rngs::SmallRng::seed_from_u64(9);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn pcg32_matches_the_reference_stream() {
        // The PCG paper's pcg32_demo vector: seed 42, stream 54.
        let mut pcg = rngs::Pcg32::new(42, 54);
        let expected: [u32; 6] = [
            0xa15c_02b7,
            0x7b47_f409,
            0xba1d_3330,
            0x83d2_f293,
            0xbfa4_784b,
            0xcbed_606e,
        ];
        for e in expected {
            assert_eq!(pcg.next_u32(), e);
        }
    }

    #[test]
    fn pcg32_streams_are_independent_and_replayable() {
        let mut a = rngs::Pcg32::new(7, 1);
        let mut b = rngs::Pcg32::new(7, 2);
        let mut a2 = rngs::Pcg32::new(7, 1);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        let xs2: Vec<u32> = (0..8).map(|_| a2.next_u32()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
        let mut c = rngs::Pcg32::seed_from_u64(99);
        let mut c2 = rngs::Pcg32::seed_from_u64(99);
        assert_eq!(c.next_u64(), c2.next_u64());
    }
}
