//! Quickstart: navigate a random Euclidean point set with 2, 3 and 4 hops
//! on sparse spanners, and compare against the Θ(n²) complete graph.
//!
//! Run with: `cargo run --release --example quickstart`

use hopspan::core::MetricNavigator;
use hopspan::metric::{gen, Metric};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let n = 300;
    let points = gen::uniform_points(n, 2, &mut rng);
    println!("{n} uniform points in the unit square");
    println!("complete graph: {} edges\n", n * (n - 1) / 2);

    for k in [2usize, 3, 4] {
        let nav = MetricNavigator::doubling(&points, 0.5, k)?;
        // Sample some queries.
        let mut worst: f64 = 1.0;
        let mut max_hops = 0usize;
        for i in 0..n {
            let (u, v) = (i, (i * 7 + 13) % n);
            if u == v {
                continue;
            }
            let path = nav.find_path(u, v)?;
            let w = MetricNavigator::path_weight(&points, &path);
            let d = points.dist(u, v);
            if d > 0.0 {
                worst = worst.max(w / d);
            }
            max_hops = max_hops.max(path.len() - 1);
        }
        println!(
            "k={k}: spanner has {:>6} edges ({} trees), sampled stretch ≤ {:.3}, hops ≤ {max_hops}",
            nav.spanner_edge_count(),
            nav.tree_count(),
            worst,
        );
    }

    // A concrete 2-hop route.
    let nav = MetricNavigator::doubling(&points, 0.5, 2)?;
    let path = nav.find_path(0, n - 1)?;
    println!(
        "\nroute 0 → {}: {:?} ({} hops, weight {:.4}, direct {:.4})",
        n - 1,
        path,
        path.len() - 1,
        MetricNavigator::path_weight(&points, &path),
        points.dist(0, n - 1),
    );
    Ok(())
}
