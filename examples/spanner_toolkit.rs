//! The §5 application toolbox in one sitting: sparsify a dense spanner,
//! build an approximate SPT and MST *inside* the spanner, answer online
//! tree-product queries with k-1 semigroup operations, and verify an MST
//! with one comparison per query.
//!
//! Run with: `cargo run --release --example spanner_toolkit`

use hopspan::apps::{
    approximate_mst, approximate_spt, shallow_light_tree, sparsify, MstVerifier, MultiterminalFlow,
    TreeProduct,
};
use hopspan::core::MetricNavigator;
use hopspan::metric::Graph;
use hopspan::metric::{gen, minimum_spanning_tree, mst_weight, spanner_lightness, Metric};
use hopspan::treealg::RootedTree;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(1717);
    let n = 120;
    let m = gen::uniform_points(n, 2, &mut rng);
    let nav = MetricNavigator::doubling(&m, 0.25, 3)?;
    println!(
        "{n} points; navigator: k=3, {} spanner edges\n",
        nav.spanner_edge_count()
    );

    // 1. Sparsification (Theorem 5.3): dense input -> sparse output.
    let mut dense = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            dense.push((i, j, m.dist(i, j)));
        }
    }
    let sparse = sparsify(&m, &nav, &dense);
    println!(
        "sparsify: {} edges -> {} edges (lightness {:.2} -> {:.2})",
        dense.len(),
        sparse.len(),
        spanner_lightness(&m, &dense),
        spanner_lightness(&m, &sparse)
    );

    // 2. Approximate SPT (Algorithm 3).
    let spt = approximate_spt(&m, &nav, 0);
    println!(
        "approx SPT from 0: stretch {:.3}, built from {} navigation queries",
        spt.measured_stretch(&m),
        n - 1
    );

    // 3. Approximate MST (Theorem 5.5).
    let amst = approximate_mst(&m, &nav);
    let w: f64 = amst.iter().map(|e| e.2).sum();
    println!(
        "approx MST inside the spanner: weight {:.4} vs exact {:.4}",
        w,
        mst_weight(&m)
    );

    // 4. Online tree products (Theorem 5.6) on the exact MST.
    let mst_edges = minimum_spanning_tree(&m);
    let tree = RootedTree::from_edges(n, 0, &mst_edges)?;
    let lengths: Vec<f64> = (0..n).map(|v| tree.parent_weight(v)).collect();
    let tp = TreeProduct::new(&tree, &lengths, |a, b| a + b, 4)?;
    let total = tp.query(3, 77)?.unwrap();
    println!(
        "tree product (path length 3→77 on the MST): {:.4} using {} semigroup ops (k-1 = 3 max)",
        total,
        tp.query_operations()
    );

    // 5. Online MST verification (§5.6.2): 1 weight comparison per query.
    let mv = MstVerifier::new(&tree, 2)?;
    let verified = mv.verify_against(&dense, &tree)?;
    println!(
        "MST verification over {} candidate edges: {} ({} weight comparisons, {} at preprocessing)",
        dense.len(),
        if verified {
            "genuine MST"
        } else {
            "NOT an MST"
        },
        mv.query_comparisons(),
        mv.preprocessing_comparisons()
    );
    // 6. Shallow-light tree (§1.3): SPT-like depth at MST-like weight.
    let slt = shallow_light_tree(&m, &nav, 0, 1.0);
    let slt_w: f64 = slt.edges(&m).iter().map(|e| e.2).sum();
    println!(
        "shallow-light tree (β=1): root stretch {:.3}, weight {:.2}x MST",
        slt.measured_stretch(&m),
        slt_w / mst_weight(&m)
    );

    // 7. Multiterminal max-flow (§5.6.1): Gomory–Hu + min tree products.
    let cap_edges: Vec<(usize, usize, f64)> = mst_edges
        .iter()
        .map(|&(a, b, w)| (a, b, 1.0 / w))
        .chain((0..n).map(|i| (i, (i + 7) % n, 0.5)))
        .filter(|&(a, b, _)| a != b)
        .collect();
    let net = Graph::new(n, &cap_edges)?;
    let mtf = MultiterminalFlow::new(&net, 2)?;
    println!(
        "multiterminal flow: max-flow(3, 77) = {:.3} via a single min-op",
        mtf.max_flow_value(3, 77)?
    );
    Ok(())
}
