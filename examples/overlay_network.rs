//! A peer-to-peer overlay with compact 2-hop routing (Theorem 1.3).
//!
//! Every node stores only polylog bits (its routing table); packets carry
//! a destination label and an O(log n)-bit header; port numbers are
//! assigned adversarially. Packets still arrive in ≤ 2 hops with
//! (1+ε)-stretch routes.
//!
//! Run with: `cargo run --release --example overlay_network`

use hopspan::metric::{gen, Metric};
use hopspan::routing::MetricRoutingScheme;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let n = 200;
    let peers = gen::uniform_points(n, 2, &mut rng);
    let scheme = MetricRoutingScheme::doubling(&peers, 0.5, &mut rng)?;
    let stats = scheme.stats();
    println!(
        "overlay with {n} peers, {} links",
        scheme.network().edge_count()
    );
    println!("tree cover: ζ = {} trees", scheme.tree_count());
    println!(
        "label ≤ {} bits, table ≤ {} bits, header ≤ {} bits",
        stats.max_label_bits, stats.max_table_bits, stats.header_bits
    );
    println!(
        "(a full routing table of n-1 entries would need ~{} bits)\n",
        (n - 1) * 16
    );

    let mut max_hops = 0usize;
    let mut worst: f64 = 1.0;
    let mut max_decisions = 0usize;
    let mut deliveries = 0usize;
    for u in (0..n).step_by(3) {
        for v in (1..n).step_by(7) {
            if u == v {
                continue;
            }
            let trace = scheme.route(u, v)?;
            assert_eq!(*trace.path.last().unwrap(), v, "misdelivered packet");
            max_hops = max_hops.max(trace.hops());
            max_decisions = max_decisions.max(trace.decision_steps);
            let w: f64 = trace.path.windows(2).map(|x| peers.dist(x[0], x[1])).sum();
            let d = peers.dist(u, v);
            if d > 0.0 {
                worst = worst.max(w / d);
            }
            deliveries += 1;
        }
    }
    println!("{deliveries} packets delivered");
    println!("max hops: {max_hops} (guarantee: 2)");
    println!("max route stretch: {worst:.3}");
    println!("max local decision steps: {max_decisions}");

    let trace = scheme.route(0, n - 1)?;
    println!(
        "\nsample packet 0 → {}: path {:?}, header ≤ {} bits",
        n - 1,
        trace.path,
        trace.max_header_bits
    );
    Ok(())
}
