//! The paper's railway motivation (§1.1): "imagine a railway network,
//! where each hop in the route amounts to switching a train — how many of
//! us would be willing to use more than, say, 4 hops?"
//!
//! We model a country: cities are clusters of stations; the rail operator
//! wants direct-ish connections (few train switches), but cannot afford a
//! line between every pair of stations. The k-hop spanner is the line
//! plan; the navigation scheme is the journey planner.
//!
//! Run with: `cargo run --release --example railway_routing`

use hopspan::core::MetricNavigator;
use hopspan::metric::{gen, Metric};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // 240 stations in 8 metropolitan clusters.
    let stations = gen::clustered_points(240, 2, 8, 0.03, &mut rng);
    let n = stations.len();
    println!("railway planning for {n} stations in 8 cities");
    println!(
        "direct lines between all pairs: {} tracks\n",
        n * (n - 1) / 2
    );

    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "switches", "tracks", "vs complete", "max detour"
    );
    for k in [2usize, 3, 4] {
        let nav = MetricNavigator::doubling(&stations, 0.5, k)?;
        let mut worst: f64 = 1.0;
        for u in (0..n).step_by(5) {
            for v in (1..n).step_by(7) {
                if u == v {
                    continue;
                }
                let path = nav.find_path(u, v)?;
                assert!(path.len() - 1 <= k, "planner exceeded {k} switches");
                let w = MetricNavigator::path_weight(&stations, &path);
                let d = stations.dist(u, v);
                if d > 0.0 {
                    worst = worst.max(w / d);
                }
            }
        }
        let m = nav.spanner_edge_count();
        println!(
            "{:<10} {:>10} {:>13.1}% {:>11.2}x",
            k - 1,
            m,
            100.0 * m as f64 / (n * (n - 1) / 2) as f64,
            worst,
        );
    }

    // A journey: first station of city 0 to first station of city 4.
    let nav = MetricNavigator::doubling(&stations, 0.5, 2)?;
    let (from, to) = (0usize, 4usize); // clusters are interleaved mod 8
    let journey = nav.find_path(from, to)?;
    println!(
        "\njourney {from} → {to}: {} train(s), via {:?}",
        journey.len() - 1,
        journey
    );
    println!(
        "distance travelled {:.4} vs straight line {:.4}",
        MetricNavigator::path_weight(&stations, &journey),
        stations.dist(from, to),
    );
    Ok(())
}
