//! Fault-tolerant navigation for a drone relay fleet (Theorem 4.2, §4.4).
//!
//! A fleet of relays covers an area; up to f of them may drop out at any
//! moment. The f-fault-tolerant spanner keeps 2-hop (1+ε)-routes between
//! all surviving relays, whatever the failure pattern — at a spanner-size
//! cost of ~f².
//!
//! Run with: `cargo run --release --example fault_tolerant_fleet`

use std::collections::HashSet;

use hopspan::core::FaultTolerantSpanner;
use hopspan::metric::{gen, Metric};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let n = 60;
    let relays = gen::uniform_points(n, 2, &mut rng);
    println!("fleet of {n} relays\n");

    println!("{:<4} {:>10} {:>16}", "f", "links", "worst stretch*");
    for f in [0usize, 1, 2, 4] {
        let sp = FaultTolerantSpanner::new(&relays, 0.25, f, 2)?;
        // Knock out f random relays and verify everyone still talks.
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        let faulty: HashSet<usize> = ids.into_iter().take(f).collect();
        let (stretch, hops) = sp.measured_stretch_and_hops(&relays, &faulty).unwrap();
        assert!(hops <= 2);
        println!("{:<4} {:>10} {:>15.2}x", f, sp.edge_count(), stretch);
    }
    println!("(*with that many random relays down; 2 hops always)\n");

    // A concrete outage.
    let sp = FaultTolerantSpanner::new(&relays, 0.25, 2, 2)?;
    let faulty: HashSet<usize> = [7usize, 23].into_iter().collect();
    let path = sp.find_path_avoiding(&relays, 0, 59, &faulty)?;
    println!("relays 7 and 23 down; route 0 → 59: {path:?}");
    println!(
        "weight {:.4} vs direct {:.4}",
        path.windows(2)
            .map(|w| relays.dist(w[0], w[1]))
            .sum::<f64>(),
        relays.dist(0, 59)
    );
    Ok(())
}
