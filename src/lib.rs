//! # hopspan — navigating metric spaces by bounded hop-diameter spanners
//!
//! A from-scratch Rust implementation of
//! *"Can't See the Forest for the Trees: Navigating Metric Spaces by
//! Bounded Hop-Diameter Spanners"* (Kahalon, Le, Milenković, Solomon —
//! PODC 2022).
//!
//! The original metric navigates optimally — one hop, exact distances —
//! at a price of Θ(n²) edges. This library navigates on a **sparse
//! spanner** with `k = 2, 3, 4, …` hops and near-exact distances, in
//! `O(k)` time per query, across doubling, general and planar metrics,
//! and fault-tolerantly in doubling metrics.
//!
//! ## Crate map
//!
//! | Module | Contents | Paper |
//! |--------|----------|-------|
//! | [`pipeline`] | parallel preprocessing fan-out + build telemetry | engineering layer |
//! | [`treealg`] | LCA, level ancestors, centroid decomposition, distance labels | §3.1 prerequisites |
//! | [`metric`] | metric spaces, graphs, generators, MST utilities | §1 |
//! | [`tree_spanner`] | 1-spanners of hop-diameter k for tree metrics + O(k) navigation | Theorem 1.1 |
//! | [`tree_cover`] | robust/Ramsey/separator tree covers, pairing covers | §2.1, Theorem 4.1 |
//! | [`core`] | metric navigation, fault-tolerant spanners | Theorems 1.2, 4.2 |
//! | [`dynamic`] | online insert/delete: epoch-swapped navigators, amortized rebuilds | engineering layer |
//! | [`routing`] | compact 2-hop routing schemes (fixed-port model) | Theorems 1.3, 5.1, 5.2 |
//! | [`serve`] | sharded batch query service: admission control, binary wire protocol, TCP front | engineering layer |
//! | [`store`] | versioned `HSNP` snapshots: checksummed flat encoding, validated zero-rebuild boot | engineering layer |
//! | [`apps`] | sparsification, approximate SPT/MST, tree products, MST verification | §5.3–5.6 |
//! | [`baselines`] | greedy spanner, Θ-graph, Thorup–Zwick oracle, Dijkstra navigation | §1.1 |
//!
//! ## Quickstart
//!
//! ```
//! use hopspan::core::MetricNavigator;
//! use hopspan::metric::{gen, Metric};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let points = gen::uniform_points(64, 2, &mut rng);
//!
//! // 2 hops, stretch ≈ 1 + ε, on a sparse spanner.
//! let nav = MetricNavigator::doubling(&points, 0.25, 2)?;
//! let path = nav.find_path(5, 40)?;
//! assert!(path.len() - 1 <= 2);
//!
//! let weight = MetricNavigator::path_weight(&points, &path);
//! assert!(weight < 2.0 * points.dist(5, 40));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hopspan_apps as apps;
pub use hopspan_baselines as baselines;
pub use hopspan_core as core;
pub use hopspan_dynamic as dynamic;
pub use hopspan_metric as metric;
pub use hopspan_pipeline as pipeline;
pub use hopspan_routing as routing;
pub use hopspan_serve as serve;
pub use hopspan_store as store;
pub use hopspan_tree_cover as tree_cover;
pub use hopspan_tree_spanner as tree_spanner;
pub use hopspan_treealg as treealg;
