//! The `hopspan` command-line tool: build bounded hop-diameter spanners
//! for point sets, query k-hop paths, and inspect sizes — from CSV files.
//!
//! ```text
//! hopspan generate --n 200 --dim 2 --seed 7 --out points.csv
//! hopspan build    --points points.csv --k 2 --eps 0.5 --out spanner.csv
//! hopspan query    --points points.csv --k 2 --eps 0.5 --from 0 --to 17
//! hopspan stats    --points points.csv --k 3 --eps 0.5
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use hopspan::core::MetricNavigator;
use hopspan::metric::{gen, EuclideanSpace, Metric};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     hopspan generate --n <count> [--dim 2] [--seed 0] [--clusters 0] --out <points.csv>\n  \
     hopspan build    --points <csv> [--k 2] [--eps 0.5] --out <spanner.csv>\n  \
     hopspan query    --points <csv> [--k 2] [--eps 0.5] --from <id> --to <id>\n  \
     hopspan stats    --points <csv> [--k 2] [--eps 0.5]\n\n\
     points.csv: one point per line, comma-separated coordinates.\n\
     spanner.csv: one edge per line as `u,v,weight`."
}

fn run(args: &[String]) -> Result<String, String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    let opts = Options::parse(&args[1..])?;
    match cmd.as_str() {
        "generate" => generate(&opts),
        "build" => build(&opts),
        "query" => query(&opts),
        "stats" => stats(&opts),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Parsed `--key value` options.
struct Options {
    entries: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut entries = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected `--option`, got `{key}`"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{key}"))?;
            entries.push((key.to_string(), value.clone()));
        }
        Ok(Options { entries })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key}: `{v}`")),
        }
    }
}

fn generate(opts: &Options) -> Result<String, String> {
    let n: usize = opts.num("n", 0)?;
    if n == 0 {
        return Err("--n must be positive".into());
    }
    let dim: usize = opts.num("dim", 2)?;
    let seed: u64 = opts.num("seed", 0)?;
    let clusters: usize = opts.num("clusters", 0)?;
    let out = opts.required("out")?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pts = if clusters > 0 {
        gen::clustered_points(n, dim, clusters, 0.05, &mut rng)
    } else {
        gen::uniform_points(n, dim, &mut rng)
    };
    let mut csv = String::new();
    for i in 0..pts.len() {
        let row: Vec<String> = pts.point(i).iter().map(|c| format!("{c}")).collect();
        writeln!(csv, "{}", row.join(",")).expect("string write");
    }
    std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!("wrote {n} points ({dim}-d) to {out}\n"))
}

fn load_points(opts: &Options) -> Result<EuclideanSpace, String> {
    let path = opts.required("points")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_points(&text)
}

fn parse_points(text: &str) -> Result<EuclideanSpace, String> {
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let coords: Result<Vec<f64>, _> = line.split(',').map(|c| c.trim().parse()).collect();
        let coords = coords.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some(first) = pts.first() {
            if coords.len() != first.len() {
                return Err(format!("line {}: inconsistent dimension", lineno + 1));
            }
        }
        pts.push(coords);
    }
    if pts.is_empty() {
        return Err("no points found".into());
    }
    Ok(EuclideanSpace::from_points(&pts))
}

fn navigator(opts: &Options, pts: &EuclideanSpace) -> Result<MetricNavigator, String> {
    let k: usize = opts.num("k", 2)?;
    let eps: f64 = opts.num("eps", 0.5)?;
    MetricNavigator::doubling(pts, eps, k).map_err(|e| e.to_string())
}

fn build(opts: &Options) -> Result<String, String> {
    let pts = load_points(opts)?;
    let out = opts.required("out")?;
    let nav = navigator(opts, &pts)?;
    let mut csv = String::new();
    for &(u, v, w) in nav.spanner_edges() {
        writeln!(csv, "{u},{v},{w}").expect("string write");
    }
    std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "spanner: {} points, k = {}, {} edges ({} trees) -> {out}\n",
        pts.len(),
        nav.k(),
        nav.spanner_edge_count(),
        nav.tree_count(),
    ))
}

fn query(opts: &Options) -> Result<String, String> {
    let pts = load_points(opts)?;
    let from: usize = opts.num("from", usize::MAX)?;
    let to: usize = opts.num("to", usize::MAX)?;
    if from >= pts.len() || to >= pts.len() {
        return Err("--from/--to out of range".into());
    }
    let nav = navigator(opts, &pts)?;
    let path = nav.find_path(from, to).map_err(|e| e.to_string())?;
    let weight = MetricNavigator::path_weight(&pts, &path);
    Ok(format!(
        "path: {path:?}\nhops: {} (k = {})\nweight: {weight:.6}\ndirect: {:.6}\nstretch: {:.4}\n",
        path.len() - 1,
        nav.k(),
        pts.dist(from, to),
        if pts.dist(from, to) > 0.0 {
            weight / pts.dist(from, to)
        } else {
            1.0
        },
    ))
}

fn stats(opts: &Options) -> Result<String, String> {
    let pts = load_points(opts)?;
    let nav = navigator(opts, &pts)?;
    let n = pts.len();
    let complete = n * (n - 1) / 2;
    // Sampled stretch.
    let mut worst: f64 = 1.0;
    for i in 0..n {
        let (u, v) = (i, (i * 13 + 7) % n);
        if u == v {
            continue;
        }
        let path = nav.find_path(u, v).map_err(|e| e.to_string())?;
        let d = pts.dist(u, v);
        if d > 0.0 {
            worst = worst.max(MetricNavigator::path_weight(&pts, &path) / d);
        }
    }
    Ok(format!(
        "points:        {n}\n\
         k (hops):      {}\n\
         cover trees:   {}\n\
         spanner edges: {} ({:.1}% of complete)\n\
         sampled max stretch: {worst:.4}\n",
        nav.k(),
        nav.tree_count(),
        nav.spanner_edge_count(),
        100.0 * nav.spanner_edge_count() as f64 / complete as f64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_points() {
        let pts = parse_points("0,0\n1 , 2\n# comment\n\n3,4\n").unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts.point(1), &[1.0, 2.0]);
    }

    #[test]
    fn rejects_bad_points() {
        assert!(parse_points("").is_err());
        assert!(parse_points("1,2\n3\n").is_err());
        assert!(parse_points("a,b\n").is_err());
    }

    #[test]
    fn options_parse() {
        let args: Vec<String> = ["--n", "5", "--out", "x.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Options::parse(&args).unwrap();
        assert_eq!(o.num("n", 0usize).unwrap(), 5);
        assert_eq!(o.required("out").unwrap(), "x.csv");
        assert!(o.required("missing").is_err());
        assert!(Options::parse(&["--key".to_string()]).is_err());
        assert!(Options::parse(&["key".to_string(), "v".to_string()]).is_err());
    }

    #[test]
    fn end_to_end_via_tmpfiles() {
        let dir = std::env::temp_dir().join("hopspan_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let pts = dir.join("p.csv");
        let span = dir.join("s.csv");
        let a = |s: &str| s.to_string();
        run(&[
            a("generate"),
            a("--n"),
            a("30"),
            a("--seed"),
            a("3"),
            a("--out"),
            a(pts.to_str().unwrap()),
        ])
        .unwrap();
        let out = run(&[
            a("build"),
            a("--points"),
            a(pts.to_str().unwrap()),
            a("--k"),
            a("2"),
            a("--eps"),
            a("0.5"),
            a("--out"),
            a(span.to_str().unwrap()),
        ])
        .unwrap();
        assert!(out.contains("spanner: 30 points"));
        let q = run(&[
            a("query"),
            a("--points"),
            a(pts.to_str().unwrap()),
            a("--from"),
            a("0"),
            a("--to"),
            a("29"),
        ])
        .unwrap();
        assert!(q.contains("hops:"));
        let s = run(&[a("stats"), a("--points"), a(pts.to_str().unwrap())]).unwrap();
        assert!(s.contains("spanner edges"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
