//! The parallel preprocessing pipeline: determinism across worker
//! counts, telemetry consistency, and regressions fixed at the root.

use std::collections::HashSet;

use hopspan::core::{FaultTolerantSpanner, MetricNavigator, NavigationError};
use hopspan::metric::{gen, EuclideanSpace};
use hopspan::routing::{FtMetricRoutingScheme, MetricRoutingScheme};
use hopspan::tree_cover::{CoverError, RobustTreeCover};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xBEEF ^ tag)
}

/// The tentpole guarantee: a parallel build is bit-identical to a
/// single-worker build — same `H_X` edge set, same weights, same order.
#[test]
fn navigator_parallel_build_is_deterministic() {
    let m = gen::uniform_points(60, 2, &mut rng(1));
    let (nav1, s1) = MetricNavigator::doubling_with_stats(&m, 0.5, 3, Some(1)).unwrap();
    for workers in [2usize, 4, 8] {
        let (navw, sw) = MetricNavigator::doubling_with_stats(&m, 0.5, 3, Some(workers)).unwrap();
        assert_eq!(
            nav1.spanner_edges(),
            navw.spanner_edges(),
            "H_X differs between 1 and {workers} workers"
        );
        assert_eq!(nav1.tree_count(), navw.tree_count());
        assert_eq!(s1.per_tree_spanner_edges, sw.per_tree_spanner_edges);
        assert_eq!(s1.edge_instances, sw.edge_instances);
        assert_eq!(s1.edges_after_dedup, sw.edges_after_dedup);
        assert_eq!(sw.workers, workers);
    }
}

#[test]
fn cover_parallel_build_is_deterministic() {
    let m = gen::uniform_points(40, 2, &mut rng(2));
    let (c1, _) = RobustTreeCover::new_with_stats(&m, 0.5, Some(1)).unwrap();
    let (c8, _) = RobustTreeCover::new_with_stats(&m, 0.5, Some(8)).unwrap();
    assert_eq!(c1.tree_count(), c8.tree_count());
    for (a, b) in c1.cover().trees().iter().zip(c8.cover().trees()) {
        assert_eq!(a.tree().len(), b.tree().len());
        for v in 0..a.tree().len() {
            assert_eq!(a.point_of(v), b.point_of(v));
            assert_eq!(a.tree().parent(v), b.tree().parent(v));
        }
    }
}

#[test]
fn fault_tolerant_parallel_build_is_deterministic() {
    let m = gen::uniform_points(24, 2, &mut rng(3));
    let (sp1, s1) = FaultTolerantSpanner::new_with_stats(&m, 0.5, 2, 2, Some(1)).unwrap();
    let (sp4, s4) = FaultTolerantSpanner::new_with_stats(&m, 0.5, 2, 2, Some(4)).unwrap();
    assert_eq!(sp1.edges(), sp4.edges());
    assert_eq!(s1.per_tree_spanner_edges, s4.per_tree_spanner_edges);
    assert_eq!(s1.edge_instances, s4.edge_instances);
}

#[test]
fn routing_parallel_build_is_deterministic() {
    let m = gen::uniform_points(20, 2, &mut rng(4));
    let (rs1, b1) =
        MetricRoutingScheme::doubling_with_stats(&m, 0.5, &mut rng(7), Some(1)).unwrap();
    let (rs4, b4) =
        MetricRoutingScheme::doubling_with_stats(&m, 0.5, &mut rng(7), Some(4)).unwrap();
    // Identical overlay + identical port RNG stream ⇒ identical scheme.
    assert_eq!(b1.edges_after_dedup, b4.edges_after_dedup);
    assert_eq!(b1.per_tree_spanner_edges, b4.per_tree_spanner_edges);
    assert_eq!(rs1.stats(), rs4.stats());
    for u in 0..20 {
        for v in 0..20 {
            assert_eq!(
                rs1.route(u, v).unwrap().path,
                rs4.route(u, v).unwrap().path,
                "route ({u},{v}) differs across worker counts"
            );
        }
    }
    let (ft1, f1) =
        FtMetricRoutingScheme::new_with_stats(&m, 0.5, 1, &mut rng(8), Some(1)).unwrap();
    let (ft4, f4) =
        FtMetricRoutingScheme::new_with_stats(&m, 0.5, 1, &mut rng(8), Some(4)).unwrap();
    assert_eq!(f1.edges_after_dedup, f4.edges_after_dedup);
    assert_eq!(ft1.stats(), ft4.stats());
}

/// Queries on a pair no cover tree shares must surface as an error, not
/// an empty path (satellite: the `find_path` escape hatch).
#[test]
fn uncovered_pair_is_an_error() {
    use hopspan::tree_cover::DominatingTree;
    let m = EuclideanSpace::from_points(&[vec![0.0], vec![1.0], vec![2.0]]);
    // A hand-rolled "cover" whose only tree spans points 0 and 1 — point
    // 2 is uncovered, so (0, 2) has no shared tree.
    let full = MetricNavigator::doubling(&m, 0.5, 2).unwrap();
    assert!(
        full.find_path(0, 2).is_ok(),
        "sane cover must cover all pairs"
    );
    let partial: Vec<DominatingTree> = {
        let cover =
            RobustTreeCover::new(&EuclideanSpace::from_points(&[vec![0.0], vec![1.0]]), 0.5)
                .unwrap();
        cover.into_cover().into_trees()
    };
    let nav = MetricNavigator::from_cover(&m, partial, None, 2).unwrap();
    match nav.find_path(0, 2) {
        Err(NavigationError::PairNotCovered { u: 0, v: 2 }) => {}
        other => panic!("expected PairNotCovered, got {other:?}"),
    }
    // approx_distance mirrors the miss as None rather than erroring.
    assert!(nav.approx_distance(0, 2).is_none());
}

/// Replays the checked-in proptest regression
/// (`EuclideanSpace { coords: [0.0, 0.0, 0.0, 1.0], dim: 2 }`,
/// `faults = {}`): two points at distance 1 with f = 0 must build and
/// navigate, and exact duplicates must be rejected as `DuplicatePoints`
/// instead of panicking in the scale computation.
#[test]
fn proptest_regression_two_points_zero_faults() {
    let m = EuclideanSpace::from_points(&[vec![0.0, 0.0], vec![0.0, 1.0]]);
    let sp = FaultTolerantSpanner::new(&m, 0.5, 0, 2).unwrap();
    let path = sp.find_path_avoiding(&m, 0, 1, &HashSet::new()).unwrap();
    assert_eq!(path, vec![0, 1]);
}

#[test]
fn zero_distance_pairs_are_rejected_not_panicking() {
    let dup = EuclideanSpace::from_points(&[vec![0.0, 0.0], vec![0.0, 0.0], vec![1.0, 0.0]]);
    match RobustTreeCover::new(&dup, 0.5) {
        Err(CoverError::DuplicatePoints { i: 0, j: 1 }) => {}
        other => panic!("expected DuplicatePoints {{ 0, 1 }}, got {other:?}"),
    }
    assert!(matches!(
        FaultTolerantSpanner::new(&dup, 0.5, 0, 2),
        Err(NavigationError::Cover(CoverError::DuplicatePoints { .. }))
    ));
    assert!(matches!(
        MetricNavigator::doubling(&dup, 0.5, 2),
        Err(NavigationError::Cover(CoverError::DuplicatePoints { .. }))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The telemetry must agree with the structure it describes.
    #[test]
    fn build_stats_match_navigator(
        seed in 0u64..1_000,
        n in 6usize..24,
        workers in 1usize..5,
    ) {
        let m = gen::uniform_points(n, 2, &mut rng(seed));
        let (nav, stats) =
            MetricNavigator::doubling_with_stats(&m, 0.5, 2, Some(workers)).unwrap();
        prop_assert_eq!(stats.workers, workers);
        prop_assert_eq!(stats.tree_count, nav.tree_count());
        prop_assert_eq!(stats.per_tree_spanner_edges.len(), nav.tree_count());
        prop_assert_eq!(stats.edges_after_dedup, nav.spanner_edge_count());
        prop_assert!(stats.edge_instances >= stats.edges_after_dedup);
        // Every materialized instance came from some tree-spanner edge.
        prop_assert!(stats.spanner_edge_total() >= stats.edge_instances);
        prop_assert!(stats.phase_duration("spanners").is_some());
        prop_assert!(stats.phase_duration("materialize").is_some());
        prop_assert!(stats.phase_duration("cover/trees").is_some());
    }

    /// Determinism across worker counts on arbitrary inputs, not just
    /// the fixed seeds above.
    #[test]
    fn parallel_equals_sequential_everywhere(seed in 0u64..1_000, n in 4usize..20) {
        let m = gen::uniform_points(n, 2, &mut rng(seed));
        let (a, _) = MetricNavigator::doubling_with_stats(&m, 0.5, 2, Some(1)).unwrap();
        let (b, _) = MetricNavigator::doubling_with_stats(&m, 0.5, 2, Some(3)).unwrap();
        prop_assert_eq!(a.spanner_edges(), b.spanner_edges());
    }
}
