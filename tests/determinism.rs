//! Cross-process determinism regression: the `H_X` spanner edge list
//! must be bit-identical across worker counts *and* across process
//! runs. In-process equality (see `parallel_pipeline.rs`) would not
//! catch nondeterminism whose order happens to be stable within one
//! address space — e.g. `HashMap` iteration seeded per-process by
//! `RandomState`. This is exactly the property the
//! `nondeterministic-iteration` lint rule (R2) protects: hash-order
//! leaks differ *between* processes, so we hash a canonical
//! serialization of `H_X` in freshly spawned children and compare.
//!
//! The test re-executes its own binary (filtered to this test) with
//! `HOPSPAN_DETERMINISM_CHILD` set; the child builds the navigator with
//! the worker count taken from `HOPSPAN_WORKERS` and prints an
//! FNV-1a hash of the serialized edge list on a marker line.

use std::process::Command;

use hopspan::core::MetricNavigator;
use hopspan::metric::gen;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHILD_ENV: &str = "HOPSPAN_DETERMINISM_CHILD";
const HASH_MARKER: &str = "HOPSPAN_HX_HASH=";
const WORKERS_MARKER: &str = "HOPSPAN_HX_WORKERS=";

/// The fixed instance every process builds: seeded points, so the
/// metric is identical across runs without any serialization.
fn build_navigator() -> (MetricNavigator, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD37E_2415);
    let m = gen::uniform_points(48, 2, &mut rng);
    let (nav, stats) =
        MetricNavigator::doubling_with_stats(&m, 0.5, 3, None).expect("seeded instance builds");
    (nav, stats.workers)
}

/// Canonical serialization of `H_X`: one `u v bits(w)` line per edge,
/// in stored order. Weights go through `f64::to_bits` so the hash
/// witnesses bit-identical floats, not approximate ones.
fn serialize_edges(nav: &MetricNavigator) -> String {
    let mut out = String::new();
    for &(u, v, w) in nav.spanner_edges() {
        out.push_str(&format!("{u} {v} {:016x}\n", w.to_bits()));
    }
    out
}

/// FNV-1a, 64-bit — chosen because it is trivially portable and has no
/// per-process seed (unlike `DefaultHasher`, whose output may legally
/// differ between runs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn hx_hash_is_stable_across_workers_and_processes() {
    let (nav, _) = build_navigator();
    let serialized = serialize_edges(&nav);
    let local_hash = fnv1a(serialized.as_bytes());

    if std::env::var(CHILD_ENV).is_ok() {
        // Child mode: report and stop — the parent does the comparing.
        let (child_nav, workers) = build_navigator();
        let h = fnv1a(serialize_edges(&child_nav).as_bytes());
        println!("{HASH_MARKER}{h:016x}");
        println!("{WORKERS_MARKER}{workers}");
        return;
    }

    assert!(
        !nav.spanner_edges().is_empty(),
        "the fixture instance must produce a non-trivial spanner"
    );

    let exe = std::env::current_exe().expect("test binary path");
    for workers in [1usize, 2, 5] {
        let output = Command::new(&exe)
            .args([
                "hx_hash_is_stable_across_workers_and_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .env(hopspan::pipeline::WORKERS_ENV, workers.to_string())
            .output()
            .expect("re-exec the test binary");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "child with {workers} workers failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let child_hash = extract(&stdout, HASH_MARKER)
            .unwrap_or_else(|| panic!("no hash marker in child output:\n{stdout}"));
        let child_workers = extract(&stdout, WORKERS_MARKER)
            .unwrap_or_else(|| panic!("no workers marker in child output:\n{stdout}"));
        assert_eq!(
            child_workers,
            workers.to_string(),
            "child must honour HOPSPAN_WORKERS={workers}"
        );
        assert_eq!(
            child_hash,
            format!("{local_hash:016x}"),
            "H_X hash differs between this process and a child with \
             HOPSPAN_WORKERS={workers}; serialized edge list:\n{serialized}"
        );
    }
}

/// Finds `marker` anywhere in the output and returns the token after
/// it. libtest may print `test <name> ...` on the same line before the
/// child's first `println!`, so markers are not always line-initial.
fn extract(stdout: &str, marker: &str) -> Option<String> {
    let at = stdout.find(marker)? + marker.len();
    let rest = &stdout[at..];
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}
