//! Cross-process snapshot-boot fidelity: a navigator booted from an
//! `HSNP` snapshot in a *different process* must hash bit-identically
//! to the freshly built one. This is the end-to-end claim behind
//! instant boot — the file on disk, not shared memory or allocator
//! luck, carries the exact `H_X` structure.
//!
//! Same harness as `serve_determinism.rs`: the parent builds and
//! writes the snapshot, then re-executes its own test binary with
//! `HOPSPAN_STORE_BOOT_CHILD` pointing at the file; the child boots it
//! cold and prints the loaded navigator's FNV-1a `H_X` hash on a
//! marker line.

use std::process::Command;

use hopspan::core::MetricNavigator;
use hopspan::metric::gen;
use hopspan::store;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHILD_ENV: &str = "HOPSPAN_STORE_BOOT_CHILD";
const HASH_MARKER: &str = "HOPSPAN_STORE_HX=";

const N: usize = 256;

#[test]
fn snapshot_boot_hashes_bit_identical_across_processes() {
    if let Ok(path) = std::env::var(CHILD_ENV) {
        // Child: cold-boot the snapshot the parent wrote and report
        // the loaded navigator's H_X hash.
        let (snap, _digest) = store::read_snapshot_file(std::path::Path::new(&path))
            .expect("child boots the parent's snapshot");
        println!("{HASH_MARKER}{:016x}", store::hx_hash(&snap.navigator));
        return;
    }

    let mut rng = ChaCha8Rng::seed_from_u64(0x5704_B007);
    let points = gen::uniform_points(N, 2, &mut rng);
    // The serve boot path's budgeted constructor — fast enough for a
    // test, and the structure snapshots actually carry in production.
    let (nav, _gamma) =
        MetricNavigator::general_budgeted(&points, 8, 3, &mut rng).expect("navigator builds");
    let live_hx = store::hx_hash(&nav);

    let path = std::env::temp_dir().join(format!("hopspan-store-boot-{}.hsnp", std::process::id()));
    let digest = store::write_snapshot_file(&path, &points, &nav, None).expect("snapshot writes");
    assert!(digest.bytes > 0, "snapshot must not be empty");

    // Same-process control first: the loader agrees with the builder.
    let (snap, read_digest) = store::read_snapshot_file(&path).expect("snapshot reads back");
    assert_eq!(read_digest, digest, "write/read digests must agree");
    assert_eq!(
        store::hx_hash(&snap.navigator),
        live_hx,
        "in-process boot must reproduce H_X exactly"
    );

    let exe = std::env::current_exe().expect("test binary path");
    let output = Command::new(&exe)
        .args([
            "snapshot_boot_hashes_bit_identical_across_processes",
            "--exact",
            "--nocapture",
        ])
        .env(CHILD_ENV, &path)
        .output()
        .expect("re-exec the test binary");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let _ = std::fs::remove_file(&path);
    assert!(
        output.status.success(),
        "child boot failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let child_hx = extract(&stdout, HASH_MARKER)
        .unwrap_or_else(|| panic!("no hash marker in child output:\n{stdout}"));
    assert_eq!(
        child_hx,
        format!("{live_hx:016x}"),
        "a cold-booted process disagrees with the builder on H_X"
    );
}

/// Finds `marker` anywhere in the output and returns the token after
/// it (libtest may prefix the line).
fn extract(stdout: &str, marker: &str) -> Option<String> {
    let at = stdout.find(marker)? + marker.len();
    let rest = &stdout[at..];
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}
