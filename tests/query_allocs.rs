//! Zero-allocation guarantee of the buffer-reuse query APIs.
//!
//! Installs a counting global allocator (per-thread counters, so the
//! libtest harness threads cannot pollute the measurement) and asserts
//! that after one warm-up sweep, `find_path_into` /
//! `find_path_avoiding_into` / `route_into` / `route_avoiding_into`
//! perform **zero** heap allocations per query. The allocating wrappers
//! (`find_path`, `route`) are exercised alongside as a sanity check that
//! the counter itself works.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashSet;

use hopspan::core::{FaultTolerantSpanner, MetricNavigator};
use hopspan::metric::gen;
use hopspan::routing::{FtMetricRoutingScheme, MetricRoutingScheme, RouteTrace, TreeRoutingScheme};
use hopspan::tree_spanner::TreeHopSpanner;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

thread_local! {
    /// Allocation events on this thread (alloc + realloc, not dealloc).
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocation events per thread.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a const-initialized
// thread-local `Cell` update and cannot re-enter the allocator
// (`try_with` tolerates TLS teardown).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.with(|c| c.get())
}

/// Runs `f` over every ordered pair of `0..n` and returns the number of
/// allocation events the sweep performed on this thread.
fn count_sweep(n: usize, mut f: impl FnMut(usize, usize)) -> u64 {
    let before = alloc_events();
    for u in 0..n {
        for v in 0..n {
            f(u, v);
        }
    }
    alloc_events() - before
}

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn query_into_apis_do_not_allocate_after_warmup() {
    // --- Theorem 1.1: tree spanner, k = 4 (recursive sub-navigators).
    let edges: Vec<(usize, usize, f64)> = (1..96)
        .map(|v| ((v * 7 + 3) % v, v, 1.0 + (v % 5) as f64))
        .collect();
    let tree = hopspan::treealg::RootedTree::from_edges(96, 0, &edges).unwrap();
    let sp = TreeHopSpanner::new(&tree, 4).unwrap();
    let mut buf = Vec::new();
    let warm = count_sweep(96, |u, v| {
        sp.find_path_into(u, v, &mut buf).unwrap();
    });
    let cold = count_sweep(96, |u, v| {
        sp.find_path_into(u, v, &mut buf).unwrap();
    });
    assert_eq!(cold, 0, "tree find_path_into allocated (warm-up: {warm})");
    let alloc_api = count_sweep(96, |u, v| {
        std::hint::black_box(sp.find_path(u, v).unwrap());
    });
    assert!(alloc_api > 0, "counter failed to observe find_path allocs");

    // --- Theorem 1.2: metric navigator over a Ramsey cover (home-tree
    // selection) on uniform points.
    let m = gen::uniform_points(48, 2, &mut rng(71));
    let (nav, _gamma) = MetricNavigator::general_budgeted(&m, 8, 3, &mut rng(72)).unwrap();
    count_sweep(48, |u, v| {
        nav.find_path_into(u, v, &mut buf).unwrap();
    });
    let cold = count_sweep(48, |u, v| {
        nav.find_path_into(u, v, &mut buf).unwrap();
    });
    assert_eq!(cold, 0, "metric find_path_into allocated");

    // --- Doubling cover (min-distance tree selection scan).
    let (nav_d, _stats) = MetricNavigator::doubling_with_stats(&m, 0.5, 2, Some(1)).unwrap();
    count_sweep(48, |u, v| {
        nav_d.find_path_into(u, v, &mut buf).unwrap();
    });
    let cold = count_sweep(48, |u, v| {
        nav_d.find_path_into(u, v, &mut buf).unwrap();
    });
    assert_eq!(cold, 0, "doubling find_path_into allocated");

    // --- Theorem 4.1: fault-tolerant spanner, one faulty point.
    let ft = FaultTolerantSpanner::new(&m, 0.5, 1, 2).unwrap();
    let faulty: HashSet<usize> = [7usize].into_iter().collect();
    let mut scratch = Vec::new();
    let ok = |u: usize, v: usize| u != 7 && v != 7;
    count_sweep(48, |u, v| {
        if ok(u, v) {
            ft.find_path_avoiding_into(&m, u, v, &faulty, &mut buf, &mut scratch)
                .unwrap();
        }
    });
    let cold = count_sweep(48, |u, v| {
        if ok(u, v) {
            ft.find_path_avoiding_into(&m, u, v, &faulty, &mut buf, &mut scratch)
                .unwrap();
        }
    });
    assert_eq!(cold, 0, "find_path_avoiding_into allocated");

    // --- Theorem 5.1: tree routing (k = 2 overlay).
    let trs = TreeRoutingScheme::new(&tree, &mut rng(73)).unwrap();
    let mut trace = RouteTrace::default();
    count_sweep(96, |u, v| {
        trs.route_into(u, v, &mut trace).unwrap();
    });
    let cold = count_sweep(96, |u, v| {
        trs.route_into(u, v, &mut trace).unwrap();
    });
    assert_eq!(cold, 0, "tree route_into allocated");

    // --- Theorem 1.3: metric routing over a Ramsey cover.
    let rs = MetricRoutingScheme::general(&m, 2, &mut rng(74)).unwrap();
    count_sweep(48, |u, v| {
        rs.route_into(u, v, &mut trace).unwrap();
    });
    let cold = count_sweep(48, |u, v| {
        rs.route_into(u, v, &mut trace).unwrap();
    });
    assert_eq!(cold, 0, "metric route_into allocated");

    // --- Theorem 5.2: fault-tolerant routing with an order scratch.
    let ftr = FtMetricRoutingScheme::new(&m, 0.5, 1, &mut rng(75)).unwrap();
    let mut order = Vec::new();
    count_sweep(48, |u, v| {
        if ok(u, v) {
            ftr.route_avoiding_into(u, v, &faulty, &mut trace, &mut order)
                .unwrap();
        }
    });
    let cold = count_sweep(48, |u, v| {
        if ok(u, v) {
            ftr.route_avoiding_into(u, v, &faulty, &mut trace, &mut order)
                .unwrap();
        }
    });
    assert_eq!(cold, 0, "route_avoiding_into allocated");
}
