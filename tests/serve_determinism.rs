//! Cross-process determinism of the serve layer: shard dispatch and
//! served outcomes must be bit-identical for any `HOPSPAN_WORKERS`
//! setting and across process runs. Shard assignment uses seed-stable
//! FNV-1a (not `DefaultHasher`, which is randomly keyed per process),
//! so two processes — or two machines — given the same point id and
//! shard count must always agree on the owning shard; and because
//! every shard holds a bit-identical replica, the *answers* must not
//! depend on shard count, worker count, or batching either.
//!
//! Same harness as `degraded_determinism.rs`: the parent re-executes
//! its own binary with `HOPSPAN_DETERMINISM_CHILD` set and compares
//! FNV-1a hashes printed on marker lines by children pinned to
//! `HOPSPAN_WORKERS ∈ {1, 4, 64}`.

use std::process::Command;
use std::time::Duration;

use hopspan::metric::gen;
use hopspan::serve::{
    shard_of_point, BackendParams, FaultSet, Op, QueryOutcome, ServeConfig, ShardedNavigator,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHILD_ENV: &str = "HOPSPAN_DETERMINISM_CHILD";
const HASH_MARKER: &str = "HOPSPAN_SERVE_HASH=";

const N: usize = 64;

/// Canonical serialization of (a) the shard-dispatch table for every
/// point under every sweep shard count, and (b) every served outcome
/// over a fixed pair sweep through a batched multi-shard engine.
/// Stretches go through `f64::to_bits` so the hash witnesses
/// bit-identical floats.
fn serialize_outcomes() -> String {
    let mut out = String::new();

    // (a) Dispatch table: pure function of (point, shards).
    for shards in [1usize, 2, 4, 8] {
        for p in 0..N as u32 {
            out.push_str(&format!("S {shards} {p} {}\n", shard_of_point(p, shards)));
        }
    }

    // (b) Served outcomes through a real batched engine.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E4E_DE7E);
    let points = gen::uniform_points(N, 2, &mut rng);
    let engine = ShardedNavigator::replicated(
        &points,
        &BackendParams::default(),
        ServeConfig {
            shards: 4,
            workers_per_shard: 2,
            max_batch: 8,
            batch_deadline: Duration::from_micros(50),
            queue_depth: 32,
            ..ServeConfig::default()
        },
    )
    .expect("seeded engine starts");
    let faults = FaultSet::new(&[5]).expect("one fault fits");
    let mut path = Vec::new();
    for u in 0..N as u32 {
        for v in ((u + 1)..N as u32).step_by(9) {
            for op in [
                Op::FindPath { u, v },
                Op::Route { u, v },
                Op::RouteAvoiding { u, v, faults },
            ] {
                if matches!(op, Op::RouteAvoiding { .. }) && (u == 5 || v == 5) {
                    continue;
                }
                match engine.call(op, &mut path) {
                    Ok(QueryOutcome::Full) => {
                        out.push_str(&format!("F {} {u} {v} {path:?}\n", op.opcode()));
                    }
                    Ok(QueryOutcome::Degraded {
                        reason,
                        achieved_stretch,
                    }) => {
                        out.push_str(&format!(
                            "D {} {u} {v} {path:?} {reason:?} {:016x}\n",
                            op.opcode(),
                            achieved_stretch.to_bits()
                        ));
                    }
                    Ok(QueryOutcome::Stats) | Ok(QueryOutcome::Mutation { .. }) => {
                        out.push_str("unreachable\n")
                    }
                    Err(e) => out.push_str(&format!("E {} {u} {v} {e}\n", op.opcode())),
                }
            }
        }
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn served_outcomes_are_stable_across_workers_and_processes() {
    let serialized = serialize_outcomes();
    let local_hash = fnv1a(serialized.as_bytes());

    if std::env::var(CHILD_ENV).is_ok() {
        println!("{HASH_MARKER}{local_hash:016x}");
        return;
    }

    assert!(
        serialized.lines().any(|l| l.starts_with('F')),
        "the fixture must exercise full served answers:\n{serialized}"
    );

    let exe = std::env::current_exe().expect("test binary path");
    for workers in [1usize, 4, 64] {
        let output = Command::new(&exe)
            .args([
                "served_outcomes_are_stable_across_workers_and_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .env(hopspan::pipeline::WORKERS_ENV, workers.to_string())
            .output()
            .expect("re-exec the test binary");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "child with {workers} workers failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let child_hash = extract(&stdout, HASH_MARKER)
            .unwrap_or_else(|| panic!("no hash marker in child output:\n{stdout}"));
        assert_eq!(
            child_hash,
            format!("{local_hash:016x}"),
            "served outcomes differ between this process and a child \
             with HOPSPAN_WORKERS={workers}; serialization:\n{serialized}"
        );
    }
}

/// Finds `marker` anywhere in the output and returns the token after
/// it (libtest may prefix the line).
fn extract(stdout: &str, marker: &str) -> Option<String> {
    let at = stdout.find(marker)? + marker.len();
    let rest = &stdout[at..];
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}
