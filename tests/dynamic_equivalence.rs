//! Equivalence of the dynamic navigator with a from-scratch build:
//! after any interleaving of inserts and removes followed by a
//! `flush()`, the published epoch's `H_X` hash must be bit-identical
//! to `MetricNavigator::general_budgeted` run over the surviving live
//! point set with the same seed, budget and hop bound (DESIGN.md §12).
//!
//! Two harnesses:
//!
//! 1. A proptest over randomized mutation interleavings — the oracle
//!    is recomputed from scratch for every case.
//! 2. A cross-process pin in the style of `failover_determinism.rs`:
//!    a scripted mutation storm's epoch ids, `H_X` hashes and served
//!    paths are serialized, FNV-1a-hashed, and compared against child
//!    processes re-executed with `HOPSPAN_WORKERS ∈ {1, 4, 16}` — the
//!    epoch builder's worker count must never leak into the geometry.

use std::process::Command;

use hopspan::core::MetricNavigator;
use hopspan::dynamic::{DynConfig, DynamicNavigator};
use hopspan::metric::EuclideanSpace;
use hopspan::store::hx_hash;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHILD_ENV: &str = "HOPSPAN_DETERMINISM_CHILD";
const HASH_MARKER: &str = "HOPSPAN_DYNAMIC_HASH=";

/// From-scratch `H_X` over the exact live point set the navigator
/// publishes (same seed, same budget, same hop bound).
fn scratch_hx(nav: &DynamicNavigator, cfg: &DynConfig) -> u64 {
    let points: Vec<Vec<f64>> = nav
        .published_ids()
        .iter()
        .map(|&id| nav.coords_of(id).expect("published id is live"))
        .collect();
    let metric = EuclideanSpace::from_points(&points);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let (scratch, _gamma) =
        MetricNavigator::general_budgeted(&metric, cfg.tree_budget, cfg.k, &mut rng)
            .expect("from-scratch build");
    hx_hash(&scratch)
}

/// Strategy: a base point set of distinct grid points (ids `0..n`).
fn base_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::hash_set((0i32..40, 0i32..40), 8..20).prop_map(|set| {
        set.into_iter()
            .map(|(x, y)| vec![f64::from(x), f64::from(y)])
            .collect()
    })
}

/// One scripted mutation: `Insert` lands on a grid disjoint from the
/// base set; `Remove` targets an id modulo the alive allocation range
/// (misses and double-removes are tolerated, like real churn).
#[derive(Debug, Clone)]
enum Mutation {
    Insert(i32, i32),
    Remove(u32),
}

fn mutations() -> impl Strategy<Value = Vec<Mutation>> {
    proptest::collection::vec((0u32..2, 0i32..40, 0i32..40), 1..14).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, x, y)| {
                if kind == 0 {
                    Mutation::Insert(x, y)
                } else {
                    Mutation::Remove((x * 40 + y) as u32 % 32)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: any interleaving of inserts and removes,
    /// flushed, publishes an epoch whose `H_X` equals a from-scratch
    /// build over the surviving live set.
    #[test]
    fn flushed_epochs_match_from_scratch_builds(
        points in base_points(),
        muts in mutations(),
    ) {
        let cfg = DynConfig {
            dirty_threshold: 3,
            max_pending: 8,
            ..DynConfig::default()
        };
        let nav = DynamicNavigator::new(&points, cfg).expect("seed build");
        let mut allocated = points.len() as u32;
        for m in &muts {
            match *m {
                // Offset past the base grid so inserts never collide
                // with seed points; collisions between inserts surface
                // as tolerated `DuplicatePoint` errors.
                Mutation::Insert(x, y) => {
                    if let Ok((id, _epoch)) =
                        nav.insert(&[100.0 + f64::from(x), f64::from(y)])
                    {
                        prop_assert!(id >= points.len() as u32);
                        allocated = allocated.max(id + 1);
                    }
                }
                Mutation::Remove(r) => {
                    // Misses, double-removes and too-few-points are
                    // legitimate churn outcomes, not test failures.
                    let _ = nav.remove(r % allocated.max(1));
                }
            }
        }
        let info = nav.flush();
        prop_assert_eq!(info.pending, 0, "flush must drain the ledger");
        prop_assert_eq!(info.published_points, nav.live_count());
        prop_assert_eq!(
            info.hx,
            scratch_hx(&nav, &cfg),
            "published epoch diverged from a from-scratch build over the \
             same live set (muts: {:?})",
            muts
        );
    }
}

/// Canonical serialization of a scripted mutation storm: per-round
/// flush results (epoch id, `H_X`, live count), the surviving id set,
/// and served paths between stable seed points. Rebuilds publish only
/// on explicit `flush()` (thresholds maxed), so every recorded epoch
/// id is scripted rather than timing-dependent.
fn serialize_storm() -> String {
    let cfg = DynConfig {
        dirty_threshold: u32::MAX,
        max_pending: u64::MAX,
        ..DynConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0xD11A_0E27 ^ 0x5EED);
    let points: Vec<Vec<f64>> = (0..48)
        .map(|_| vec![rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0])
        .collect();
    let nav = DynamicNavigator::new(&points, cfg).expect("seed build");

    let mut out = String::new();
    let mut inserted: Vec<u32> = Vec::new();
    let mut path = Vec::new();
    for round in 0..6u32 {
        for step in 0..4u32 {
            if round % 2 == 0 {
                let coords = [200.0 + f64::from(round * 4 + step), rng.gen::<f64>()];
                let (id, epoch) = nav.insert(&coords).expect("scripted insert");
                inserted.push(id);
                out.push_str(&format!("I {round} {step} {id} {epoch}\n"));
            } else if let Some(victim) = inserted.pop() {
                let epoch = nav.remove(victim).expect("scripted remove");
                out.push_str(&format!("R {round} {step} {victim} {epoch}\n"));
            }
        }
        let info = nav.flush();
        let scratch = scratch_hx(&nav, &cfg);
        out.push_str(&format!(
            "S {round} {} {:016x} {:016x} {}\n",
            info.id, info.hx, scratch, info.published_points
        ));
        // Seed ids are never mutated, so these paths must stay served
        // (and identical) across every epoch and worker count.
        for (u, v) in [(0u32, 47u32), (3, 29), (47, 11)] {
            let epoch = nav
                .find_path_into(u, v, &mut path)
                .expect("seed points stay navigable");
            out.push_str(&format!("P {round} {u} {v} {epoch} {path:?}\n"));
        }
    }
    out.push_str(&format!("L {:?}\n", nav.published_ids()));
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn epoch_hashes_are_stable_across_worker_counts_and_processes() {
    let serialized = serialize_storm();
    let local_hash = fnv1a(serialized.as_bytes());

    if std::env::var(CHILD_ENV).is_ok() {
        println!("{HASH_MARKER}{local_hash:016x}");
        return;
    }

    // The storm must exercise both mutation kinds and every round's
    // published hash must equal its from-scratch oracle.
    assert!(serialized.lines().any(|l| l.starts_with('I')));
    assert!(serialized.lines().any(|l| l.starts_with('R')));
    for line in serialized.lines().filter(|l| l.starts_with('S')) {
        let cols: Vec<_> = line.split_whitespace().collect();
        assert_eq!(
            cols[3], cols[4],
            "published H_X != from-scratch oracle on line: {line}"
        );
    }

    let exe = std::env::current_exe().expect("test binary path");
    for workers in [1usize, 4, 16] {
        let output = Command::new(&exe)
            .args([
                "epoch_hashes_are_stable_across_worker_counts_and_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .env(hopspan::pipeline::WORKERS_ENV, workers.to_string())
            .output()
            .expect("re-exec the test binary");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "child with {workers} workers failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let child_hash = extract(&stdout, HASH_MARKER)
            .unwrap_or_else(|| panic!("no hash marker in child output:\n{stdout}"));
        assert_eq!(
            child_hash,
            format!("{local_hash:016x}"),
            "dynamic epoch geometry differs between this process and a \
             child with HOPSPAN_WORKERS={workers}; serialization:\n{serialized}"
        );
    }
}

/// Finds `marker` anywhere in the output and returns the token after
/// it (libtest may prefix the line).
fn extract(stdout: &str, marker: &str) -> Option<String> {
    let at = stdout.find(marker)? + marker.len();
    let rest = &stdout[at..];
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}
