//! Property-based tests (proptest) for the core invariants of the paper:
//! stretch-1 / hop-bounded tree spanner paths, cover domination, bounded
//! navigation stretch, routing delivery, and application correctness —
//! over randomized tree shapes, weights and point sets.

use std::collections::HashMap;

use hopspan::apps::TreeProduct;
use hopspan::core::ackermann::{ack_a, ack_b, alpha, alpha_prime};
use hopspan::core::{FaultTolerantSpanner, MetricNavigator};
use hopspan::metric::{EuclideanSpace, Metric};
use hopspan::routing::TreeRoutingScheme;
use hopspan::tree_cover::RobustTreeCover;
use hopspan::tree_spanner::TreeHopSpanner;
use hopspan::treealg::{Lca, RootedTree};
use proptest::prelude::*;
use rand::SeedableRng;

/// Strategy: a random tree given by parent indices + weights.
fn tree_strategy(max_n: usize) -> impl Strategy<Value = RootedTree> {
    (2..max_n)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(0usize..1_000_000, n - 1),
                proptest::collection::vec(0.0f64..100.0, n - 1),
            )
                .prop_map(move |(parents, weights)| {
                    let edges: Vec<(usize, usize, f64)> = parents
                        .iter()
                        .zip(weights)
                        .enumerate()
                        .map(|(i, (&p, w))| (p % (i + 1), i + 1, w))
                        .collect();
                    RootedTree::from_edges(n, 0, &edges).expect("valid random tree")
                })
        })
        .no_shrink()
}

/// Strategy: distinct 2-D points on a grid (no duplicates).
fn points_strategy(max_n: usize) -> impl Strategy<Value = EuclideanSpace> {
    proptest::collection::hash_set((0i32..50, 0i32..50), 2..max_n).prop_map(|set| {
        let pts: Vec<Vec<f64>> = set
            .into_iter()
            .map(|(x, y)| vec![x as f64, y as f64])
            .collect();
        EuclideanSpace::from_points(&pts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1.1: every returned tree-spanner path has ≤ k hops, uses
    /// only spanner edges, and has weight exactly the tree distance.
    #[test]
    fn tree_spanner_paths_are_exact(tree in tree_strategy(120), k in 2usize..6) {
        let sp = TreeHopSpanner::new(&tree, k).unwrap();
        let lca = Lca::new(&tree);
        let mut edges: HashMap<(usize, usize), f64> = HashMap::new();
        for &(a, b, w) in sp.edges() {
            edges.insert((a.min(b), a.max(b)), w);
        }
        let n = tree.len();
        for step in 1..n.min(17) {
            let (u, v) = (step, (step * 7) % n);
            let path = sp.find_path(u, v).unwrap();
            prop_assert!(path.len() - 1 <= k || u == v);
            let mut w = 0.0;
            for win in path.windows(2) {
                let key = (win[0].min(win[1]), win[0].max(win[1]));
                prop_assert!(edges.contains_key(&key), "non-spanner edge {key:?}");
                w += edges[&key];
            }
            let want = tree.distance_with(&lca, u, v);
            prop_assert!((w - want).abs() <= 1e-6 * want.max(1.0));
        }
    }

    /// Tree covers dominate: tree distances never undercut the metric.
    #[test]
    fn robust_cover_dominates(m in points_strategy(24)) {
        let rc = RobustTreeCover::new(&m, 0.5).unwrap();
        prop_assert!(rc.cover().validate(&m).is_ok());
        // And every pair is covered with finite stretch.
        prop_assert!(rc.cover().measured_stretch(&m).is_finite());
    }

    /// Theorem 1.2: navigation paths respect the hop bound and a global
    /// stretch budget on doubling inputs.
    #[test]
    fn navigation_bounded(m in points_strategy(20), k in 2usize..4) {
        let nav = MetricNavigator::doubling(&m, 0.5, k).unwrap();
        let n = m.len();
        for u in 0..n {
            let v = (u * 5 + 1) % n;
            let path = nav.find_path(u, v).unwrap();
            prop_assert!(!path.is_empty());
            prop_assert!(path.len() - 1 <= k);
            let w = MetricNavigator::path_weight(&m, &path);
            prop_assert!(w <= 3.0 * m.dist(u, v) + 1e-9);
        }
    }

    /// §2.2: the Ackermann inverses are monotone in n and consistent with
    /// their defining functions.
    #[test]
    fn ackermann_inverses_consistent(k in 0usize..8, n in 1u128..1_000_000) {
        let a = alpha(k, n);
        // Defining property: the function at a reaches n, at a-1 it doesn't.
        let f = |s: u128| if k % 2 == 0 { ack_a(k / 2, s) } else { ack_b(k / 2, s) };
        prop_assert!(f(a) >= n);
        if a > 0 {
            prop_assert!(f(a - 1) < n);
        }
        // Monotonicity in n and the α' sandwich (Lemma 2.4 of [Sol13]).
        prop_assert!(alpha(k, n + 1) >= a);
        let ap = alpha_prime(k, n);
        prop_assert!(a <= ap && ap <= 2 * a + 4);
    }

    /// Theorem 4.2 / §4.4: under any fault set of size ≤ f, every
    /// surviving pair still gets a ≤ k-hop path avoiding the faults.
    #[test]
    fn fault_tolerant_paths_avoid_faults(
        m in points_strategy(14),
        faults in proptest::collection::hash_set(0usize..14, 0..3),
    ) {
        let n = m.len();
        // f must leave at least two live points (f ≤ n - 2).
        let f = 2usize.min(n.saturating_sub(2));
        let faulty: std::collections::HashSet<usize> =
            faults.into_iter().filter(|&x| x < n).take(f).collect();
        let sp = FaultTolerantSpanner::new(&m, 0.5, f, 2).unwrap();
        for u in 0..n {
            if faulty.contains(&u) { continue; }
            let v = (u * 3 + 1) % n;
            if v == u || faulty.contains(&v) { continue; }
            let path = sp.find_path_avoiding(&m, u, v, &faulty).unwrap();
            prop_assert!(path.len() - 1 <= 2);
            for p in &path {
                prop_assert!(!faulty.contains(p));
            }
        }
    }

    /// Theorem 5.6: tree products agree with a direct path fold for the
    /// (max, f64) semigroup on arbitrary random trees.
    #[test]
    fn tree_products_match_fold(tree in tree_strategy(60), k in 2usize..5) {
        let n = tree.len();
        let vals: Vec<f64> = (0..n).map(|v| ((v * 2654435761) % 97) as f64).collect();
        let max = |a: &f64, b: &f64| a.max(*b);
        let tp = TreeProduct::new(&tree, &vals, max, k).unwrap();
        for u in 0..n.min(10) {
            let v = (u * 17 + 5) % n;
            if u == v { continue; }
            let path = tree.vertex_path(u, v);
            let want = path.windows(2).map(|w| {
                let c = if tree.parent(w[0]) == Some(w[1]) { w[0] } else { w[1] };
                vals[c]
            }).fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(tp.query(u, v).unwrap(), Some(want));
        }
    }

    /// Theorem 5.1: tree routing always delivers in ≤ 2 hops at stretch 1,
    /// under any port adversary.
    #[test]
    fn tree_routing_delivers(tree in tree_strategy(80), seed in 0u64..1000) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let rs = TreeRoutingScheme::new(&tree, &mut rng).unwrap();
        let n = tree.len();
        for u in 0..n.min(12) {
            let v = (u * 11 + 3) % n;
            let trace = rs.route(u, v).unwrap();
            prop_assert_eq!(*trace.path.last().unwrap(), v);
            prop_assert!(trace.hops() <= 2);
            let w: f64 = trace.path.windows(2).map(|x| tree.distance_slow(x[0], x[1])).sum();
            let want = tree.distance_slow(u, v);
            prop_assert!((w - want).abs() <= 1e-6 * want.max(1.0));
        }
    }

    /// The buffer-reuse query APIs are bit-identical to their allocating
    /// wrappers: `find_path_into` emits exactly `find_path`'s path on
    /// tree spanners, even when the buffer carries a stale previous
    /// answer.
    #[test]
    fn tree_find_path_into_matches_find_path(tree in tree_strategy(100), k in 2usize..6) {
        let sp = TreeHopSpanner::new(&tree, k).unwrap();
        let n = tree.len();
        let mut buf = Vec::new();
        for step in 0..n.min(20) {
            let (u, v) = ((step * 13 + 2) % n, (step * 5) % n);
            let want = sp.find_path(u, v).unwrap();
            sp.find_path_into(u, v, &mut buf).unwrap();
            prop_assert_eq!(&buf, &want, "({}, {}) diverged", u, v);
        }
    }

    /// Same contract on the metric navigator (Theorem 1.2) and on the
    /// fault-tolerant spanner (Theorem 4.2).
    #[test]
    fn metric_find_path_into_matches_find_path(m in points_strategy(18)) {
        let nav = MetricNavigator::doubling(&m, 0.5, 3).unwrap();
        // f must leave at least two live points (f ≤ n - 2).
        let f = 1usize.min(m.len().saturating_sub(2));
        let ft = FaultTolerantSpanner::new(&m, 0.5, f, 2).unwrap();
        let faulty = std::collections::HashSet::new();
        let n = m.len();
        let (mut buf, mut scratch) = (Vec::new(), Vec::new());
        for u in 0..n {
            let v = (u * 7 + 1) % n;
            let want = nav.find_path(u, v).unwrap();
            nav.find_path_into(u, v, &mut buf).unwrap();
            prop_assert_eq!(&buf, &want, "nav ({}, {}) diverged", u, v);
            let want = ft.find_path_avoiding(&m, u, v, &faulty).unwrap();
            ft.find_path_avoiding_into(&m, u, v, &faulty, &mut buf, &mut scratch).unwrap();
            prop_assert_eq!(&buf, &want, "ft ({}, {}) diverged", u, v);
        }
    }

    /// Same contract on tree routing: `route_into` reproduces `route`'s
    /// full trace (path, header bits, decision steps).
    #[test]
    fn route_into_matches_route(tree in tree_strategy(60), seed in 0u64..1000) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let rs = TreeRoutingScheme::new(&tree, &mut rng).unwrap();
        let n = tree.len();
        let mut trace = hopspan::routing::RouteTrace::default();
        for u in 0..n.min(12) {
            let v = (u * 11 + 3) % n;
            let want = rs.route(u, v).unwrap();
            rs.route_into(u, v, &mut trace).unwrap();
            prop_assert_eq!(&trace.path, &want.path);
            prop_assert_eq!(trace.max_header_bits, want.max_header_bits);
            prop_assert_eq!(trace.decision_steps, want.decision_steps);
        }
    }
}

/// A `Metric` adapter over a raw (possibly damaged) matrix — performs
/// no validation, so the damage reaches the constructors unfiltered.
#[derive(Debug, Clone)]
struct RawMatrix(Vec<Vec<f64>>);

impl Metric for RawMatrix {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        self.0[i][j]
    }
}

/// Strategy: a valid Euclidean distance matrix with one seeded class
/// of damage. Returns `(rows, kind)`; kinds 0–2 (NaN, ∞, negative) are
/// observable through single-orientation `Metric` reads, 3–5
/// (asymmetry, triangle violation, near-duplicate) are matrix-level
/// hazards.
fn damaged_matrix_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (points_strategy(16), 0usize..6, 0usize..1_000_000).prop_map(|(space, kind, pick)| {
        let n = space.len();
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| space.dist(i, j)).collect())
            .collect();
        let i = pick % n;
        let j = (i + 1 + (pick / n) % (n - 1)) % n;
        let (i, j) = (i.min(j), i.max(j));
        match kind {
            0 => {
                rows[i][j] = f64::NAN;
                rows[j][i] = f64::NAN;
            }
            1 => {
                rows[i][j] = f64::INFINITY;
                rows[j][i] = f64::INFINITY;
            }
            2 => {
                rows[i][j] = -1.0 - rows[i][j];
                rows[j][i] = rows[i][j];
            }
            3 => rows[j][i] = rows[i][j] + 0.5,
            4 => {
                // Grid points live in [0, 50]²; 10⁴ beats any detour.
                rows[i][j] = 1e4;
                rows[j][i] = 1e4;
            }
            _ => {
                for k in 0..n {
                    if k != i && k != j {
                        rows[j][k] = rows[i][k];
                        rows[k][j] = rows[k][i];
                    }
                }
                rows[i][j] = 1e-13;
                rows[j][i] = 1e-13;
            }
        }
        (rows, kind)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Robustness: every constructor fed an adversarial matrix returns
    /// a typed `Result` — never a panic. Observable damage (NaN, ∞,
    /// negative) must additionally be *rejected* everywhere; matrix-
    /// level hazards must at least be caught by `MatrixMetric::new`
    /// (asymmetry) or the audit.
    #[test]
    fn adversarial_matrices_err_but_never_panic(case in damaged_matrix_strategy()) {
        use hopspan::metric::{MatrixMetric, MetricAudit};
        let (rows, kind) = case;
        let n = rows.len();

        let audit = MetricAudit::of_matrix(&rows);
        prop_assert!(!audit.is_clean(), "audit missed damage kind {}", kind);

        let flat: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let matrix = std::panic::catch_unwind(|| MatrixMetric::new(n, flat))
            .expect("MatrixMetric::new must not panic");
        if kind <= 3 {
            prop_assert!(matrix.is_err(), "kind {} must be rejected at matrix level", kind);
        }

        let raw = RawMatrix(rows);
        let detectable = kind <= 2;
        let cover = std::panic::catch_unwind(|| {
            RobustTreeCover::new(&raw, 0.5).map(|_| ())
        })
        .expect("RobustTreeCover::new must not panic");
        let nav = std::panic::catch_unwind(|| {
            MetricNavigator::doubling(&raw, 0.5, 2).map(|_| ())
        })
        .expect("MetricNavigator::doubling must not panic");
        let ft = std::panic::catch_unwind(|| {
            FaultTolerantSpanner::new(&raw, 0.5, 1, 2).map(|_| ())
        })
        .expect("FaultTolerantSpanner::new must not panic");
        if detectable {
            prop_assert!(cover.is_err(), "cover accepted damage kind {}", kind);
            prop_assert!(nav.is_err(), "navigator accepted damage kind {}", kind);
            prop_assert!(ft.is_err(), "ft spanner accepted damage kind {}", kind);
        }
    }
}
