//! Cross-crate integration tests: the full pipelines of the paper, from
//! points to covers to spanners to navigation, routing and applications.

use std::collections::HashSet;

use hopspan::apps::{approximate_mst, approximate_spt, sparsify, MstVerifier, TreeProduct};
use hopspan::baselines::{greedy_spanner, DijkstraNavigator};
use hopspan::core::{FaultTolerantSpanner, MetricNavigator};
use hopspan::metric::{gen, mst_weight, spanner_max_stretch, GraphMetric, Metric};
use hopspan::routing::{FtMetricRoutingScheme, MetricRoutingScheme, TreeRoutingScheme};
use hopspan::treealg::RootedTree;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng(tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xE2E ^ tag)
}

/// Points → robust cover → navigator → k-hop paths with bounded stretch,
/// agreeing with the Dijkstra baseline on the same spanner.
#[test]
fn doubling_pipeline_with_baseline_cross_check() {
    let m = gen::uniform_points(48, 2, &mut rng(1));
    for k in [2usize, 3] {
        let nav = MetricNavigator::doubling(&m, 0.25, k).unwrap();
        let dij = DijkstraNavigator::new(48, nav.spanner_edges());
        for u in 0..48 {
            for v in (u + 1)..48 {
                let p = nav.find_path(u, v).unwrap();
                assert!(p.len() - 1 <= k);
                let w_nav = MetricNavigator::path_weight(&m, &p);
                // The baseline's min-weight path cannot be heavier.
                let p_dij = dij.find_path(u, v).expect("spanner connected");
                let w_dij = DijkstraNavigator::path_weight(&m, &p_dij);
                assert!(w_dij <= w_nav * (1.0 + 1e-9));
                // And the navigated path is within the cover stretch of it.
                assert!(w_nav <= 2.0 * m.dist(u, v), "stretch blow-up");
            }
        }
    }
}

/// General metric → Ramsey cover → navigation with home trees.
#[test]
fn general_pipeline() {
    let m = gen::random_graph_metric(40, 6, &mut rng(2));
    let nav = MetricNavigator::general(&m, 2, 2, &mut rng(3)).unwrap();
    let (stretch, hops) = nav.measured_stretch_and_hops(&m).unwrap();
    assert!(hops <= 2);
    assert!(stretch <= 64.0, "stretch {stretch}");
}

/// Planar graph → separator cover → navigation.
#[test]
fn planar_pipeline() {
    let g = gen::grid_graph(5, 5);
    let m = GraphMetric::new(&g).unwrap();
    let nav = MetricNavigator::planar(&g, &m, 0.5, 2).unwrap();
    let (stretch, hops) = nav.measured_stretch_and_hops(&m).unwrap();
    assert!(hops <= 2);
    assert!(stretch <= 3.0 + 1e-9, "stretch {stretch}");
}

/// Routing and navigation agree on the overlay: every routed packet
/// follows spanner edges and lands in ≤ 2 hops.
#[test]
fn routing_pipeline() {
    let m = gen::uniform_points(32, 2, &mut rng(4));
    let rs = MetricRoutingScheme::doubling(&m, 0.25, &mut rng(5)).unwrap();
    let (stretch, hops) = rs.measured_stretch_and_hops(&m).unwrap();
    assert!(hops <= 2);
    assert!(stretch <= 2.0, "stretch {stretch}");

    let tree = gen::random_tree(64, &mut rng(6));
    let trs = TreeRoutingScheme::new(&tree, &mut rng(7)).unwrap();
    for u in 0..64 {
        let t = trs.route(u, (u * 31 + 7) % 64).unwrap();
        assert!(t.hops() <= 2);
    }
}

/// Fault tolerance end to end: spanner and routing both survive the same
/// fault pattern.
#[test]
fn fault_tolerance_pipeline() {
    let m = gen::uniform_points(24, 2, &mut rng(8));
    let f = 2;
    let sp = FaultTolerantSpanner::new(&m, 0.25, f, 2).unwrap();
    let rs = FtMetricRoutingScheme::new(&m, 0.25, f, &mut rng(9)).unwrap();
    let mut ids: Vec<usize> = (0..24).collect();
    ids.shuffle(&mut rng(10));
    let faulty: HashSet<usize> = ids.into_iter().take(f).collect();
    let (s1, h1) = sp.measured_stretch_and_hops(&m, &faulty).unwrap();
    let (s2, h2) = rs.measured_stretch_and_hops(&m, &faulty).unwrap();
    assert!(h1 <= 2 && h2 <= 2);
    assert!(s1 <= 4.0, "spanner stretch {s1}");
    assert!(s2 <= 6.0, "routing stretch {s2}");
}

/// The §5 toolbox on one navigator: sparsify, SPT, MST all inside H_X.
#[test]
fn applications_pipeline() {
    let m = gen::uniform_points(40, 2, &mut rng(11));
    let nav = MetricNavigator::doubling(&m, 0.25, 3).unwrap();
    let hx: HashSet<(usize, usize)> = nav
        .spanner_edges()
        .iter()
        .map(|&(a, b, _)| (a, b))
        .collect();
    // Sparsify a greedy spanner.
    let greedy = greedy_spanner(&m, 1.5);
    let sparse = sparsify(&m, &nav, &greedy);
    assert!(spanner_max_stretch(&m, &sparse) <= 1.5 * 2.0);
    for &(a, b, _) in &sparse {
        assert!(hx.contains(&(a, b)));
    }
    // SPT and MST inside the spanner.
    let spt = approximate_spt(&m, &nav, 0);
    assert!(spt.measured_stretch(&m) <= 2.0);
    let amst = approximate_mst(&m, &nav);
    let w: f64 = amst.iter().map(|e| e.2).sum();
    assert!(w <= 2.0 * mst_weight(&m));
    for (a, b, _) in amst {
        assert!(hx.contains(&(a.min(b), a.max(b))));
    }
}

/// Tree products and MST verification on the same tree agree with brute
/// force through the whole stack.
#[test]
fn tree_query_pipeline() {
    let tree = gen::random_tree(80, &mut rng(12));
    let lens: Vec<f64> = (0..80).map(|v| tree.parent_weight(v)).collect();
    let tp = TreeProduct::new(&tree, &lens, |a: &f64, b: &f64| a.max(*b), 3).unwrap();
    let mv = MstVerifier::new(&tree, 3).unwrap();
    let mut r = rng(13);
    for _ in 0..500 {
        let (u, v) = (r.gen_range(0..80), r.gen_range(0..80));
        if u == v {
            continue;
        }
        // The max-semigroup product IS the heaviest edge on the path.
        let via_product = tp.query(u, v).unwrap().unwrap();
        let via_verifier = mv.heaviest_on_path(u, v).unwrap().unwrap();
        assert_eq!(via_product, via_verifier, "({u},{v})");
    }
}

/// Numerical robustness: clusters at distance 1e-7 inside a unit square
/// produce deep net hierarchies; everything must still hold together.
#[test]
fn near_duplicate_points_still_navigate() {
    let mut pts = Vec::new();
    for i in 0..6 {
        let base = i as f64 / 6.0;
        pts.push(vec![base, base]);
        pts.push(vec![base + 1e-7, base]);
    }
    let m = hopspan::metric::EuclideanSpace::from_points(&pts);
    let nav = MetricNavigator::doubling(&m, 0.5, 2).unwrap();
    let (stretch, hops) = nav.measured_stretch_and_hops(&m).unwrap();
    assert!(hops <= 2);
    assert!(stretch.is_finite() && stretch <= 8.0, "stretch {stretch}");
}

/// Exact duplicates are rejected cleanly, not mis-handled.
#[test]
fn exact_duplicates_rejected() {
    let m = hopspan::metric::EuclideanSpace::from_points(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
    assert!(MetricNavigator::doubling(&m, 0.5, 2).is_err());
}

/// Steiner support: spanners over cover trees answer only leaf queries,
/// and the umbrella crate's re-exports compose.
#[test]
fn umbrella_reexports_compose() {
    let tree = RootedTree::from_edges(3, 0, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
    let sp = hopspan::tree_spanner::TreeHopSpanner::new(&tree, 2).unwrap();
    assert_eq!(sp.find_path(0, 2).unwrap().first(), Some(&0));
    assert_eq!(hopspan::core::ackermann::alpha(2, 1024), 10);
}
