//! Golden-hash regression for the query path: the FNV-1a hash of the
//! all-pairs concatenated `find_path` output on three fixed-seed
//! workloads, mirroring `tests/determinism.rs`.
//!
//! The constants below were computed against the pre-flattening
//! implementation (BTreeMap-backed `Navigator`, per-query base-case
//! Bellman–Ford). The dense-layout refactor must emit **bit-identical
//! paths** — not merely equally-good ones — so any hash drift here is a
//! regression, not a tuning change.
//!
//! To regenerate after an *intentional* path-semantics change, run with
//! `HOPSPAN_GOLDEN_PRINT=1` and copy the printed constants:
//!
//! ```text
//! HOPSPAN_GOLDEN_PRINT=1 cargo test --test query_golden -- --nocapture
//! ```

use hopspan::core::MetricNavigator;
use hopspan::metric::gen;
use hopspan::tree_spanner::TreeHopSpanner;
use hopspan::treealg::RootedTree;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Pre-refactor hash of workload 1 (tree spanners, k ∈ {2, 3, 4, 6}).
const GOLDEN_TREE: u64 = 0x689d_e8aa_4fa5_90ae;
/// Pre-refactor hash of workload 2 (doubling cover, uniform points).
const GOLDEN_DOUBLING: u64 = 0xc19c_3bbb_643a_87ff;
/// Pre-refactor hash of workload 3 (Ramsey cover, graph metric).
const GOLDEN_RAMSEY: u64 = 0xc417_efe6_1336_be49;

/// FNV-1a, 64-bit — portable and seedless (see `tests/determinism.rs`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_path(out: &mut String, u: usize, v: usize, path: &[usize]) {
    out.push_str(&format!("{u} {v}:"));
    for &p in path {
        out.push_str(&format!(" {p}"));
    }
    out.push('\n');
}

/// Deterministic random tree (same generator family as the tree-spanner
/// unit tests, fixed seed).
fn random_tree(n: usize, seed: u64) -> RootedTree {
    let mut s = seed;
    let mut xorshift = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let edges: Vec<_> = (1..n)
        .map(|v| {
            let p = (xorshift() as usize) % v;
            let w = 1.0 + (xorshift() % 100) as f64 / 10.0;
            (p, v, w)
        })
        .collect();
    RootedTree::from_edges(n, 0, &edges).expect("generator emits a tree")
}

/// Workload 1: all-ordered-pairs paths on one random tree across the
/// k = 2 (single cut), k = 3 (clique), and k ≥ 4 (sub-hierarchy) query
/// arms, base cases included.
fn hash_tree_workload() -> u64 {
    let tree = random_tree(96, 0x9E37_79B9_7F4A_7C15);
    let mut out = String::new();
    for k in [2usize, 3, 4, 6] {
        let sp = TreeHopSpanner::new(&tree, k).expect("tree spanner builds");
        out.push_str(&format!("k={k}\n"));
        for u in 0..tree.len() {
            for v in 0..tree.len() {
                let path = sp.find_path(u, v).expect("all vertices required");
                push_path(&mut out, u, v, &path);
            }
        }
    }
    fnv1a(out.as_bytes())
}

/// Workload 2: doubling cover over seeded uniform points (min-distance
/// tree selection, point mapping, dedup).
fn hash_doubling_workload() -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FF_EE00);
    let m = gen::uniform_points(48, 2, &mut rng);
    let nav = MetricNavigator::doubling(&m, 0.5, 3).expect("doubling navigator builds");
    let mut out = String::new();
    for u in 0..48 {
        for v in 0..48 {
            let path = nav
                .find_path(u, v)
                .expect("doubling cover covers all pairs");
            push_path(&mut out, u, v, &path);
        }
    }
    fnv1a(out.as_bytes())
}

/// Workload 3: Ramsey cover over a seeded graph metric (home-tree
/// selection, k = 2).
fn hash_ramsey_workload() -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBADC_AB1E);
    let m = gen::random_graph_metric(40, 17, &mut rng);
    let nav = MetricNavigator::general(&m, 2, 2, &mut rng).expect("ramsey navigator builds");
    let mut out = String::new();
    for u in 0..40 {
        for v in 0..40 {
            let path = nav.find_path(u, v).expect("ramsey cover covers all pairs");
            push_path(&mut out, u, v, &path);
        }
    }
    fnv1a(out.as_bytes())
}

#[test]
fn all_pairs_paths_match_pre_refactor_hashes() {
    let tree = hash_tree_workload();
    let doubling = hash_doubling_workload();
    let ramsey = hash_ramsey_workload();
    if std::env::var("HOPSPAN_GOLDEN_PRINT").is_ok() {
        println!("const GOLDEN_TREE: u64 = 0x{tree:016x};");
        println!("const GOLDEN_DOUBLING: u64 = 0x{doubling:016x};");
        println!("const GOLDEN_RAMSEY: u64 = 0x{ramsey:016x};");
        return;
    }
    assert_eq!(
        tree, GOLDEN_TREE,
        "tree workload paths drifted from the pre-refactor golden hash \
         (got 0x{tree:016x})"
    );
    assert_eq!(
        doubling, GOLDEN_DOUBLING,
        "doubling workload paths drifted from the pre-refactor golden hash \
         (got 0x{doubling:016x})"
    );
    assert_eq!(
        ramsey, GOLDEN_RAMSEY,
        "ramsey workload paths drifted from the pre-refactor golden hash \
         (got 0x{ramsey:016x})"
    );
}
