//! Cross-process determinism of the resilience layer: failover
//! targets and the retry backoff schedule must be bit-identical for
//! any `HOPSPAN_WORKERS` setting and across process runs. Failover
//! re-routing is a pure function of the health configuration (FNV-1a
//! rehash over healthy shards — no clocks, no `DefaultHasher`), and
//! the backoff schedule is a seeded PCG-32 stream, so a failure script
//! replayed on another machine must produce the same dispatch tables,
//! the same sleep schedule and the same served answers.
//!
//! Same harness as `serve_determinism.rs`: the parent re-executes its
//! own binary with `HOPSPAN_DETERMINISM_CHILD` set and compares FNV-1a
//! hashes printed on marker lines by children pinned to
//! `HOPSPAN_WORKERS ∈ {1, 4, 16}`.

use std::process::Command;
use std::time::Duration;

use hopspan::metric::gen;
use hopspan::serve::{
    retry_backoff, BackendParams, Op, QueryOutcome, ServeConfig, ShardHealth, ShardedNavigator,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHILD_ENV: &str = "HOPSPAN_DETERMINISM_CHILD";
const HASH_MARKER: &str = "HOPSPAN_FAILOVER_HASH=";

const N: usize = 64;

/// The scripted failure configurations the dispatch table is pinned
/// under: which of the 4 shards are `Down`.
const OUTAGE_SCRIPTS: [&[usize]; 5] = [&[], &[1], &[2], &[0, 3], &[1, 2]];

/// Canonical serialization of (a) the failover dispatch table for
/// every point under every scripted outage, (b) the deterministic
/// retry backoff schedule, and (c) served outcomes through a live
/// engine with one shard down.
fn serialize_outcomes() -> String {
    let mut out = String::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E4E_DE7F);
    let points = gen::uniform_points(N, 2, &mut rng);
    let mk = || {
        ShardedNavigator::replicated(
            &points,
            &BackendParams::default(),
            ServeConfig {
                shards: 4,
                workers_per_shard: 2,
                max_batch: 8,
                batch_deadline: Duration::from_micros(50),
                queue_depth: 32,
                ..ServeConfig::default()
            },
        )
        .expect("seeded engine starts")
    };

    // (a) Dispatch tables: pure functions of (op, health config).
    for (script_id, downs) in OUTAGE_SCRIPTS.iter().enumerate() {
        let engine = mk();
        for &d in downs.iter() {
            engine.set_health(d, ShardHealth::Down);
        }
        for u in 0..N as u32 {
            let op = Op::FindPath {
                u,
                v: (u + 1) % N as u32,
            };
            out.push_str(&format!(
                "T {script_id} {u} {} {}\n",
                engine.shard_for(&op),
                engine.dispatch_for(&op)
            ));
        }
    }

    // (b) Backoff schedules: pure functions of (seed, key, attempt).
    for seed in [0x5eed_0b0fu64, 0xD15E_A5E5] {
        for key in [0u64, (3u64 << 32) | 7, (1u64 << 32) | 63, u64::MAX] {
            for attempt in 1..=6u32 {
                out.push_str(&format!(
                    "B {seed:016x} {key:016x} {attempt} {}\n",
                    retry_backoff(seed, key, attempt).as_nanos()
                ));
            }
        }
    }

    // (c) Live served answers with shard 1 down: every re-routed query
    // must land on the same replica and answer the same path.
    let engine = mk();
    engine.set_health(1, ShardHealth::Down);
    let mut path = Vec::new();
    for u in 0..N as u32 {
        for v in ((u + 1)..N as u32).step_by(9) {
            let op = Op::FindPath { u, v };
            match engine.call(op, &mut path) {
                Ok(QueryOutcome::Full) => {
                    out.push_str(&format!(
                        "F {u} {v} {} {path:?}\n",
                        engine.dispatch_for(&op)
                    ));
                }
                Ok(QueryOutcome::Degraded {
                    reason,
                    achieved_stretch,
                }) => {
                    out.push_str(&format!(
                        "D {u} {v} {path:?} {reason:?} {:016x}\n",
                        achieved_stretch.to_bits()
                    ));
                }
                Ok(QueryOutcome::Stats) | Ok(QueryOutcome::Mutation { .. }) => {
                    out.push_str("unreachable\n")
                }
                Err(e) => out.push_str(&format!("E {u} {v} {e}\n")),
            }
        }
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn failover_targets_and_retry_schedules_are_stable_across_processes() {
    let serialized = serialize_outcomes();
    let local_hash = fnv1a(serialized.as_bytes());

    if std::env::var(CHILD_ENV).is_ok() {
        println!("{HASH_MARKER}{local_hash:016x}");
        return;
    }

    assert!(
        serialized.lines().any(|l| l.starts_with('F')),
        "the fixture must exercise full served answers:\n{serialized}"
    );
    // The scripted outages must actually re-route something.
    assert!(
        serialized.lines().any(|l| {
            let mut it = l.split_whitespace();
            it.next() == Some("T") && {
                let cols: Vec<_> = it.collect();
                cols.len() == 4 && cols[2] != cols[3]
            }
        }),
        "no dispatch table entry failed over:\n{serialized}"
    );

    let exe = std::env::current_exe().expect("test binary path");
    for workers in [1usize, 4, 16] {
        let output = Command::new(&exe)
            .args([
                "failover_targets_and_retry_schedules_are_stable_across_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .env(hopspan::pipeline::WORKERS_ENV, workers.to_string())
            .output()
            .expect("re-exec the test binary");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "child with {workers} workers failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let child_hash = extract(&stdout, HASH_MARKER)
            .unwrap_or_else(|| panic!("no hash marker in child output:\n{stdout}"));
        assert_eq!(
            child_hash,
            format!("{local_hash:016x}"),
            "failover dispatch or retry schedule differs between this \
             process and a child with HOPSPAN_WORKERS={workers}; \
             serialization:\n{serialized}"
        );
    }
}

/// Finds `marker` anywhere in the output and returns the token after
/// it (libtest may prefix the line).
fn extract(stdout: &str, marker: &str) -> Option<String> {
    let at = stdout.find(marker)? + marker.len();
    let rest = &stdout[at..];
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}
