//! Cross-process determinism of *degraded* deliveries: under
//! `DegradationPolicy::BestEffort` with an over-budget fault set, the
//! returned `FtPath::Degraded` records (path, reason, achieved
//! stretch) must be bit-identical for any `HOPSPAN_WORKERS` setting
//! and across process runs. Degradation is part of the query contract,
//! not a best-effort escape hatch — a worker-count-dependent degraded
//! path would silently break golden-hash reproducibility downstream.
//!
//! Same harness as `determinism.rs`: the parent re-executes its own
//! binary with `HOPSPAN_DETERMINISM_CHILD` set and compares FNV-1a
//! hashes printed on marker lines by children pinned to
//! `HOPSPAN_WORKERS ∈ {1, 4, 64}`.

use std::collections::HashSet;
use std::process::Command;

use hopspan::core::{DegradationPolicy, FaultTolerantSpanner, FtPath};
use hopspan::metric::gen;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const CHILD_ENV: &str = "HOPSPAN_DETERMINISM_CHILD";
const HASH_MARKER: &str = "HOPSPAN_DEGRADED_HASH=";

const N: usize = 48;
const F: usize = 2;

/// The fixed instance every process builds, and the over-budget fault
/// set thrown at it (f + 1 faults against a budget of f).
fn build_instance() -> (
    hopspan::metric::EuclideanSpace,
    FaultTolerantSpanner,
    HashSet<usize>,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDE64_ADE5);
    let m = gen::uniform_points(N, 2, &mut rng);
    let sp = FaultTolerantSpanner::new(&m, 0.25, F, 2).expect("seeded instance builds");
    let faulty: HashSet<usize> = [3usize, 17, 31].into_iter().collect();
    (m, sp, faulty)
}

/// Canonical serialization of every BestEffort outcome over a fixed
/// pair sweep. Stretches go through `f64::to_bits` so the hash
/// witnesses bit-identical floats.
fn serialize_outcomes() -> String {
    let (m, sp, faulty) = build_instance();
    let mut out = String::new();
    for u in 0..N {
        for v in (u + 1)..N {
            if faulty.contains(&u) || faulty.contains(&v) {
                continue;
            }
            match sp.find_path_avoiding_with_policy(
                &m,
                u,
                v,
                &faulty,
                DegradationPolicy::BestEffort,
            ) {
                Ok(FtPath::Full(path)) => {
                    out.push_str(&format!("F {u} {v} {path:?}\n"));
                }
                Ok(FtPath::Degraded {
                    path,
                    reason,
                    achieved_stretch,
                }) => {
                    out.push_str(&format!(
                        "D {u} {v} {path:?} {reason:?} {:016x}\n",
                        achieved_stretch.to_bits()
                    ));
                }
                Err(e) => out.push_str(&format!("E {u} {v} {e}\n")),
            }
        }
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn degraded_outcomes_are_stable_across_workers_and_processes() {
    let serialized = serialize_outcomes();
    let local_hash = fnv1a(serialized.as_bytes());

    if std::env::var(CHILD_ENV).is_ok() {
        println!("{HASH_MARKER}{local_hash:016x}");
        return;
    }

    assert!(
        serialized.lines().any(|l| l.starts_with('D')),
        "the over-budget fixture must exercise the Degraded arm:\n{serialized}"
    );

    let exe = std::env::current_exe().expect("test binary path");
    for workers in [1usize, 4, 64] {
        let output = Command::new(&exe)
            .args([
                "degraded_outcomes_are_stable_across_workers_and_processes",
                "--exact",
                "--nocapture",
            ])
            .env(CHILD_ENV, "1")
            .env(hopspan::pipeline::WORKERS_ENV, workers.to_string())
            .output()
            .expect("re-exec the test binary");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "child with {workers} workers failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let child_hash = extract(&stdout, HASH_MARKER)
            .unwrap_or_else(|| panic!("no hash marker in child output:\n{stdout}"));
        assert_eq!(
            child_hash,
            format!("{local_hash:016x}"),
            "degraded outcomes differ between this process and a child \
             with HOPSPAN_WORKERS={workers}; serialization:\n{serialized}"
        );
    }
}

/// Finds `marker` anywhere in the output and returns the token after
/// it (libtest may prefix the line).
fn extract(stdout: &str, marker: &str) -> Option<String> {
    let at = stdout.find(marker)? + marker.len();
    let rest = &stdout[at..];
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    Some(rest[..end].to_string())
}
